// LpWorkspace: warm-start re-solve correctness (objective change,
// constraint change), batch-vs-per-call decision equivalence for the
// AdmitsGain piercing test, and the zero-steady-state-allocation
// contract of the invalidation loop (asserted with a global
// operator-new counter).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "dataset/generators.h"
#include "geom/lp.h"
#include "gir/engine.h"
#include "gir/sharded_cache.h"

// ----- global allocation counter -----
// Counts every operator-new since process start. The steady-state tests
// snapshot it around a loop and assert a zero delta; gtest assertions
// themselves allocate, so snapshots bracket the measured region only.

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gir {
namespace {

// Random bounded system: the unit cube plus a few random half-spaces
// `n·x <= b` with b chosen so the cube centre stays feasible.
LpProblem RandomBoundedLp(Rng& rng, size_t d, size_t extra) {
  LpProblem lp;
  for (size_t j = 0; j < d; ++j) {
    Vec up(d, 0.0);
    up[j] = 1.0;
    lp.a.push_back(up);
    lp.b.push_back(1.0);
    Vec down(d, 0.0);
    down[j] = -1.0;
    lp.a.push_back(down);
    lp.b.push_back(0.0);
  }
  for (size_t i = 0; i < extra; ++i) {
    Vec n(d);
    double at_center = 0.0;
    for (size_t j = 0; j < d; ++j) {
      n[j] = rng.Uniform(-1.0, 1.0);
      at_center += 0.5 * n[j];
    }
    lp.a.push_back(std::move(n));
    lp.b.push_back(at_center + rng.Uniform(0.05, 0.5));
  }
  return lp;
}

Vec RandomObjective(Rng& rng, size_t d) {
  Vec c(d);
  for (double& x : c) x = rng.Uniform(-1.0, 1.0);
  return c;
}

TEST(LpWorkspaceTest, SolveLpWithMatchesSolveLpBitwise) {
  Rng rng(11);
  for (size_t d = 2; d <= 6; ++d) {
    for (int trial = 0; trial < 20; ++trial) {
      LpProblem lp = RandomBoundedLp(rng, d, 4);
      lp.c = RandomObjective(rng, d);
      LpSolution a = SolveLp(lp);
      LpWorkspace ws;
      LpSolution b = SolveLpWith(&ws, lp);
      ASSERT_EQ(a.status, b.status);
      if (a.status != LpStatus::kOptimal) continue;
      ASSERT_EQ(a.objective, b.objective);  // bitwise: same pivot path
      ASSERT_EQ(a.x.size(), b.x.size());
      for (size_t j = 0; j < a.x.size(); ++j) EXPECT_EQ(a.x[j], b.x[j]);
    }
  }
}

TEST(LpWorkspaceTest, WarmObjectiveResolveMatchesColdSolve) {
  Rng rng(23);
  for (size_t d = 2; d <= 6; ++d) {
    for (int trial = 0; trial < 20; ++trial) {
      LpProblem lp = RandomBoundedLp(rng, d, 5);
      lp.c = RandomObjective(rng, d);
      LpWorkspace ws;
      LpSolution first = SolveLpWith(&ws, lp);
      ASSERT_EQ(first.status, LpStatus::kOptimal);
      // Ten objective changes on the same basis, each checked against a
      // cold solve of the same LP (warm pivot paths may differ, so the
      // comparison is near-equality of the unique optimal value).
      for (int t = 0; t < 10; ++t) {
        Vec c2 = RandomObjective(rng, d);
        ASSERT_EQ(ws.Maximize(c2.data()), LpStatus::kOptimal);
        lp.c = c2;
        LpSolution cold = SolveLp(lp);
        ASSERT_EQ(cold.status, LpStatus::kOptimal);
        EXPECT_NEAR(ws.objective(), cold.objective, 1e-8)
            << "d=" << d << " trial=" << trial << " t=" << t;
      }
    }
  }
}

TEST(LpWorkspaceTest, AddConstraintResolvesLikeColdGrownSystem) {
  Rng rng(37);
  size_t cuts_exercised = 0;
  for (size_t d = 2; d <= 6; ++d) {
    for (int trial = 0; trial < 20; ++trial) {
      LpProblem lp = RandomBoundedLp(rng, d, 3);
      lp.c = RandomObjective(rng, d);
      LpWorkspace ws;
      LpSolution base = SolveLpWith(&ws, lp);
      ASSERT_EQ(base.status, LpStatus::kOptimal);
      // Grow the system one constraint at a time: dual-simplex re-solve
      // against a cold solve of the grown LP.
      for (int t = 0; t < 6; ++t) {
        Vec n = RandomObjective(rng, d);
        double bound = Dot(n, ws.x()) + rng.Uniform(-0.2, 0.3);
        LpStatus s = ws.AddConstraint(n.data(), bound);
        lp.a.push_back(n);
        lp.b.push_back(bound);
        LpSolution cold = SolveLp(lp);
        if (s == LpStatus::kInfeasible) {
          EXPECT_EQ(cold.status, LpStatus::kInfeasible);
          break;
        }
        ASSERT_EQ(s, LpStatus::kOptimal);
        ASSERT_EQ(cold.status, LpStatus::kOptimal);
        EXPECT_NEAR(ws.objective(), cold.objective, 1e-8);
        if (bound < Dot(n, base.x)) ++cuts_exercised;
      }
    }
  }
  // The random bounds must actually cut the optimum sometimes,
  // otherwise the dual simplex path was never tested.
  EXPECT_GT(cuts_exercised, 20u);
}

TEST(LpWorkspaceTest, MaximizeRefusesAfterInfeasibleCut) {
  // Unit square, then a cut that empties it: AddConstraint reports
  // kInfeasible and the workspace must not hand out a bogus optimum on
  // a later Maximize (the tableau is primal-infeasible).
  std::vector<double> a = {1.0, 0.0, -1.0, 0.0, 0.0, 1.0, 0.0, -1.0};
  std::vector<double> b = {1.0, 0.0, 1.0, 0.0};
  LpWorkspace ws;
  ASSERT_EQ(ws.Prepare(a.data(), b.data(), 4, 2), LpStatus::kOptimal);
  Vec c = {1.0, 1.0};
  ASSERT_EQ(ws.Maximize(c.data()), LpStatus::kOptimal);
  Vec cut = {1.0, 0.0};
  EXPECT_EQ(ws.AddConstraint(cut.data(), -1.0), LpStatus::kInfeasible);
  Vec c2 = {-1.0, 0.5};
  EXPECT_NE(ws.Maximize(c2.data()), LpStatus::kOptimal);
}

TEST(LpWorkspaceTest, BatchMatchesPerCallSolves) {
  Rng rng(41);
  for (size_t d = 2; d <= 6; ++d) {
    LpProblem lp = RandomBoundedLp(rng, d, 6);
    const size_t m = lp.a.size();
    std::vector<double> a(m * d);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < d; ++j) a[i * d + j] = lp.a[i][j];
    }
    const size_t count = 32;
    std::vector<double> objectives(count * d);
    for (double& x : objectives) x = rng.Uniform(-1.0, 1.0);
    std::vector<LpBatchItem> items(count);
    LpWorkspace ws;
    SolveLpBatch(a.data(), lp.b.data(), m, d, objectives.data(), count, &ws,
                 items.data());
    for (size_t t = 0; t < count; ++t) {
      lp.c.assign(objectives.begin() + t * d, objectives.begin() + (t + 1) * d);
      LpSolution cold = SolveLp(lp);
      ASSERT_EQ(items[t].status, cold.status);
      if (cold.status == LpStatus::kOptimal) {
        EXPECT_NEAR(items[t].objective, cold.objective, 1e-8);
      }
    }
  }
}

TEST(LpWorkspaceTest, BatchReportsInfeasibleSystems) {
  // x <= 0 and x >= 1 inside two variables.
  std::vector<double> a = {1.0, 0.0, -1.0, 0.0};
  std::vector<double> b = {0.0, -1.0};
  std::vector<double> objectives = {1.0, 0.0, 0.0, 1.0};
  std::vector<LpBatchItem> items(2);
  LpWorkspace ws;
  SolveLpBatch(a.data(), b.data(), 2, 2, objectives.data(), 2, &ws,
               items.data());
  EXPECT_EQ(items[0].status, LpStatus::kInfeasible);
  EXPECT_EQ(items[1].status, LpStatus::kInfeasible);
}

// FirstAdmittedGain == the per-call AdmitsGain loop, on regions from a
// real engine and on synthetic gains (equal eviction decisions is the
// acceptance bar for the batched invalidation path).
TEST(LpWorkspaceTest, FirstAdmittedGainMatchesPerCallLoop) {
  Rng rng(53);
  Dataset data = GenerateIndependent(800, 4, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 4)));
  LpWorkspace ws;
  size_t lp_paths_exercised = 0;
  for (int q = 0; q < 12; ++q) {
    Vec w(4);
    for (double& x : w) x = rng.Uniform(0.05, 1.0);
    Result<GirComputation> gir = engine->ComputeGir(w, 10, Phase2Method::kFP);
    ASSERT_TRUE(gir.ok());
    const GirRegion& region = gir->region;
    const size_t count = 48;
    std::vector<double> gains(count * 4);
    for (size_t t = 0; t < count; ++t) {
      for (size_t j = 0; j < 4; ++j) {
        // Mixed-sign, mostly-small gains: exercises all three paths
        // (fast admit, fast reject, LP).
        gains[t * 4 + j] = rng.Uniform(-0.05, 0.02);
      }
    }
    size_t expected = count;
    for (size_t t = 0; t < count; ++t) {
      VecView gain(gains.data() + t * 4, 4);
      bool admit = region.AdmitsGain(gain);
      int fast = 0;
      if (Dot(gain, region.query()) > 1e-9) fast = 1;
      if (fast != 1) {
        bool any_positive = false;
        for (size_t j = 0; j < 4; ++j) any_positive |= gain[j] > 0.0;
        if (any_positive) ++lp_paths_exercised;
      }
      if (admit) {
        expected = t;
        break;
      }
    }
    EXPECT_EQ(region.FirstAdmittedGain(gains.data(), count, &ws), expected);
  }
  EXPECT_GT(lp_paths_exercised, 10u);
}

// The batched piercing loop over a warm workspace performs zero heap
// allocations: grow_events stabilizes and the global new counter stays
// flat across a second identical pass.
TEST(LpWorkspaceTest, SteadyStateInvalidationLoopAllocatesNothing) {
  Rng rng(67);
  Dataset data = GenerateIndependent(600, 4, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 4)));
  std::vector<GirRegion> regions;
  for (int q = 0; q < 8; ++q) {
    Vec w(4);
    for (double& x : w) x = rng.Uniform(0.05, 1.0);
    Result<GirComputation> gir = engine->ComputeGir(w, 8, Phase2Method::kFP);
    ASSERT_TRUE(gir.ok());
    regions.push_back(gir->region.ConstraintsOnly());
  }
  const size_t count = 32;
  std::vector<double> gains(count * 4);
  for (size_t t = 0; t < count; ++t) {
    for (size_t j = 0; j < 4; ++j) {
      // A positive component forces the LP past the fast paths, but the
      // cube-wide maximum of gain·x (= the sum of positive components,
      // 5e-10) stays below the 1e-9 piercing eps: every LP runs and
      // every verdict is deterministic "not admitted".
      gains[t * 4 + j] = j == 0 ? 5e-10 : -1e-3;
    }
  }
  LpWorkspace ws;
  // No gtest macros inside the measured region (they can allocate);
  // mismatches are tallied and asserted afterwards.
  size_t mismatches = 0;
  auto run_pass = [&]() {
    for (const GirRegion& region : regions) {
      mismatches +=
          region.FirstAdmittedGain(gains.data(), count, &ws) != count;
    }
  };
  run_pass();  // warm-up: buffers grow to the high-water shapes
  ASSERT_EQ(mismatches, 0u);
  const uint64_t grow_after_warmup = ws.grow_events();
  const uint64_t allocs_before = g_allocations.load();
  run_pass();
  run_pass();
  const uint64_t allocs_after = g_allocations.load();
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "steady-state piercing loop hit the heap";
  EXPECT_EQ(ws.grow_events(), grow_after_warmup);
  EXPECT_EQ(mismatches, 0u);
}

// End-to-end: ShardedGirCache::InvalidateForUpdates with warm member
// scratch allocates nothing once shapes have stabilized.
TEST(LpWorkspaceTest, SteadyStateCacheInvalidationAllocatesNothing) {
  Rng rng(79);
  Dataset data = GenerateIndependent(600, 4, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 4)));
  ShardedGirCache cache(64, 4);
  for (int q = 0; q < 8; ++q) {
    Vec w(4);
    for (double& x : w) x = rng.Uniform(0.05, 1.0);
    Result<GirComputation> gir = engine->ComputeGir(w, 8, Phase2Method::kFP);
    ASSERT_TRUE(gir.ok());
    cache.Insert(8, gir->topk.result, gir->region, /*version=*/0);
  }
  // All-zero inserts transform to the origin, so every gain g(0)−g(p_k)
  // is componentwise non-positive: the fast path rejects deterministically
  // (no eviction, every entry survives and is re-stamped) while the
  // whole per-entry machinery — transform, gain flattening, shard
  // splices, re-stamp — still runs. Version advances one epoch per pass
  // so entries stay eligible.
  std::vector<Vec> inserted_g;
  for (int t = 0; t < 16; ++t) {
    inserted_g.push_back(Vec(4, 0.0));
  }
  std::vector<RecordId> no_deletes;
  uint64_t version = 1;
  // No gtest macros inside the measured region (they can allocate).
  size_t mismatches = 0;
  auto run_pass = [&]() {
    UpdateInvalidation inv = cache.InvalidateForUpdates(
        no_deletes, inserted_g, data, engine->scoring(), version++);
    mismatches += inv.survived != 8;
    mismatches +=
        (inv.insert_evicted + inv.delete_evicted + inv.stale_evicted) != 0;
  };
  run_pass();  // warm-up
  ASSERT_EQ(mismatches, 0u);
  const uint64_t allocs_before = g_allocations.load();
  run_pass();
  run_pass();
  const uint64_t allocs_after = g_allocations.load();
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "steady-state cache invalidation hit the heap";
  EXPECT_EQ(mismatches, 0u);
}

}  // namespace
}  // namespace gir
