// End-to-end correctness of the GIR algorithms. The two load-bearing
// properties:
//   1. SP, CP, FP and the brute-force reference describe the SAME
//      region (identical membership), even though their constraint
//      sets differ.
//   2. Semantics: any query vector inside the region reproduces the
//      exact ordered top-k; vectors outside it do not.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/brute_force.h"
#include "gir/engine.h"
#include "topk/scoring.h"

namespace gir {
namespace {

std::vector<RecordId> ScanTopK(const Dataset& data,
                               const ScoringFunction& scoring, VecView w,
                               size_t k) {
  std::vector<RecordId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](RecordId a, RecordId b) {
    return scoring.Score(data.Get(a), w) > scoring.Score(data.Get(b), w);
  });
  ids.resize(k);
  return ids;
}

struct MethodCase {
  const char* dataset;
  int dim;
  int k;
  uint64_t seed;
};

class GirEquivalenceTest : public ::testing::TestWithParam<MethodCase> {};

TEST_P(GirEquivalenceTest, AllMethodsDescribeTheSameRegion) {
  const MethodCase& c = GetParam();
  Rng rng(c.seed);
  Result<Dataset> data = GenerateByName(c.dataset, 600, c.dim, rng);
  ASSERT_TRUE(data.ok());
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&*data, &disk, MakeScoring("Linear", c.dim)));

  Vec w(c.dim);
  for (int j = 0; j < c.dim; ++j) w[j] = rng.Uniform(0.1, 1.0);

  Result<GirComputation> bf =
      engine->ComputeGir(w, c.k, Phase2Method::kBruteForce);
  Result<GirComputation> sp = engine->ComputeGir(w, c.k, Phase2Method::kSP);
  Result<GirComputation> cp = engine->ComputeGir(w, c.k, Phase2Method::kCP);
  Result<GirComputation> fp = engine->ComputeGir(w, c.k, Phase2Method::kFP);
  ASSERT_TRUE(bf.ok());
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(cp.ok());
  ASSERT_TRUE(fp.ok());

  // Identical top-k across methods.
  EXPECT_EQ(bf->topk.result, sp->topk.result);
  EXPECT_EQ(sp->topk.result, cp->topk.result);
  EXPECT_EQ(cp->topk.result, fp->topk.result);

  // The pruning chain: FP keeps no more candidates than CP keeps
  // records, which keeps no more than SP.
  EXPECT_LE(cp->stats.candidates, sp->stats.candidates);
  EXPECT_LE(fp->stats.candidates, sp->stats.candidates);

  // Membership equivalence on random probes (mix of inside/outside).
  for (int probe = 0; probe < 400; ++probe) {
    Vec q(c.dim);
    for (int j = 0; j < c.dim; ++j) {
      // Half the probes hug the query (likely inside), half roam.
      q[j] = probe % 2 == 0 ? std::clamp(w[j] + rng.Uniform(-0.15, 0.15),
                                         0.0, 1.0)
                            : rng.Uniform();
    }
    bool in_bf = bf->region.Contains(q);
    EXPECT_EQ(in_bf, sp->region.Contains(q)) << "probe " << probe;
    EXPECT_EQ(in_bf, cp->region.Contains(q)) << "probe " << probe;
    EXPECT_EQ(in_bf, fp->region.Contains(q)) << "probe " << probe;
  }

  // Region volumes agree.
  double v_bf = bf->region.polytope().Volume();
  double v_fp = fp->region.polytope().Volume();
  EXPECT_NEAR(v_bf, v_fp, 1e-7 + 1e-4 * v_bf);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GirEquivalenceTest,
    ::testing::Values(MethodCase{"IND", 2, 5, 11}, MethodCase{"IND", 2, 1, 12},
                      MethodCase{"IND", 3, 10, 13},
                      MethodCase{"IND", 4, 8, 14}, MethodCase{"IND", 5, 5, 15},
                      MethodCase{"COR", 3, 5, 16}, MethodCase{"COR", 4, 10, 17},
                      MethodCase{"ANTI", 2, 10, 18},
                      MethodCase{"ANTI", 3, 8, 19},
                      MethodCase{"ANTI", 4, 5, 20}));

class GirSemanticsTest : public ::testing::TestWithParam<MethodCase> {};

TEST_P(GirSemanticsTest, RegionMembershipPredictsResultPreservation) {
  const MethodCase& c = GetParam();
  Rng rng(c.seed * 77);
  Result<Dataset> data = GenerateByName(c.dataset, 400, c.dim, rng);
  ASSERT_TRUE(data.ok());
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&*data, &disk, MakeScoring("Linear", c.dim)));
  LinearScoring scoring(c.dim);

  Vec w(c.dim);
  for (int j = 0; j < c.dim; ++j) w[j] = rng.Uniform(0.2, 0.9);
  Result<GirComputation> fp = engine->ComputeGir(w, c.k, Phase2Method::kFP);
  ASSERT_TRUE(fp.ok());
  std::vector<RecordId> original = ScanTopK(*data, scoring, w, c.k);
  ASSERT_EQ(fp->topk.result, original);

  // Inside probes: walk from the query toward the boundary along random
  // directions (the region is convex, so t in [0, 0.9*t_max] stays in).
  int inside_checked = 0;
  for (int probe = 0; probe < 80; ++probe) {
    Vec dir(c.dim);
    for (int j = 0; j < c.dim; ++j) dir[j] = rng.Uniform(-1.0, 1.0);
    GirRegion::RaySpan span = fp->region.ClipRay(w, dir);
    double t = rng.Uniform(0.0, 0.9 * span.t_max);
    Vec q = AddScaled(w, dir, t);
    if (!fp->region.Contains(q, -1e-9)) continue;  // numerically boundary
    std::vector<RecordId> now = ScanTopK(*data, scoring, q, c.k);
    EXPECT_EQ(now, original) << "inside probe must preserve the result";
    ++inside_checked;
  }
  // Outside probes: random cube points strictly violating the region.
  int outside_checked = 0;
  for (int probe = 0; probe < 200; ++probe) {
    Vec q(c.dim);
    for (int j = 0; j < c.dim; ++j) q[j] = rng.Uniform(0.001, 1.0);
    if (fp->region.Contains(q, 1e-9)) continue;
    std::vector<RecordId> now = ScanTopK(*data, scoring, q, c.k);
    EXPECT_NE(now, original)
        << "outside probe must change the (ordered) result";
    ++outside_checked;
  }
  // The probe mix must actually exercise both sides.
  EXPECT_GT(inside_checked, 5);
  EXPECT_GT(outside_checked, 5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GirSemanticsTest,
    ::testing::Values(MethodCase{"IND", 2, 5, 1}, MethodCase{"IND", 3, 10, 2},
                      MethodCase{"IND", 4, 5, 3}, MethodCase{"COR", 3, 8, 4},
                      MethodCase{"ANTI", 3, 5, 5},
                      MethodCase{"ANTI", 4, 10, 6}));

TEST(GirMethodsTest, BruteForceStandaloneMatchesEngine) {
  Rng rng(123);
  Dataset data = GenerateIndependent(300, 3, rng);
  LinearScoring scoring(3);
  Vec w = {0.4, 0.7, 0.5};
  Result<GirRegion> standalone = ComputeGirBruteForce(data, scoring, w, 10);
  ASSERT_TRUE(standalone.ok());
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  Result<GirComputation> fp = engine->ComputeGir(w, 10, Phase2Method::kFP);
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(standalone->result(), fp->topk.result);
  for (int probe = 0; probe < 300; ++probe) {
    Vec q = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    EXPECT_EQ(standalone->Contains(q), fp->region.Contains(q));
  }
}

TEST(GirMethodsTest, QueryVectorAlwaysInsideItsGir) {
  Rng rng(321);
  Dataset data = GenerateAnticorrelated(500, 4, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 4)));
  for (int trial = 0; trial < 10; ++trial) {
    Vec w(4);
    for (int j = 0; j < 4; ++j) w[j] = rng.Uniform(0.05, 1.0);
    Result<GirComputation> fp = engine->ComputeGir(w, 7, Phase2Method::kFP);
    ASSERT_TRUE(fp.ok());
    EXPECT_TRUE(fp->region.Contains(w, 1e-12));
  }
}

TEST(GirMethodsTest, NonLinearScoringViaSp) {
  // §7.2: SP supports sum-of-monotone scoring; verify semantics with
  // the Polynomial and Mixed functions.
  Rng rng(55);
  Dataset data = GenerateIndependent(400, 4, rng);
  for (const char* fn : {"Polynomial", "Mixed"}) {
    DiskManager disk;
    auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring(fn, 4)));
    auto scoring = MakeScoring(fn, 4);
    Vec w = {0.6, 0.4, 0.8, 0.5};
    Result<GirComputation> sp = engine->ComputeGir(w, 8, Phase2Method::kSP);
    ASSERT_TRUE(sp.ok()) << fn;
    std::vector<RecordId> original = ScanTopK(data, *scoring, w, 8);
    EXPECT_EQ(sp->topk.result, original) << fn;
    int inside = 0;
    for (int probe = 0; probe < 50; ++probe) {
      Vec dir(4);
      for (int j = 0; j < 4; ++j) dir[j] = rng.Uniform(-1.0, 1.0);
      GirRegion::RaySpan span = sp->region.ClipRay(w, dir);
      Vec q = AddScaled(w, dir, rng.Uniform(0.0, 0.9 * span.t_max));
      if (!sp->region.Contains(q, -1e-9)) continue;
      EXPECT_EQ(ScanTopK(data, *scoring, q, 8), original) << fn;
      ++inside;
    }
    int outside = 0;
    for (int probe = 0; probe < 150; ++probe) {
      Vec q(4);
      for (int j = 0; j < 4; ++j) q[j] = rng.Uniform(0.001, 1.0);
      if (sp->region.Contains(q, 1e-9)) continue;
      EXPECT_NE(ScanTopK(data, *scoring, q, 8), original) << fn;
      ++outside;
    }
    EXPECT_GT(inside, 3) << fn;
    EXPECT_GT(outside, 3) << fn;
  }
}

TEST(GirMethodsTest, FpIoNeverExceedsSp) {
  // The headline claim: FP reads far fewer pages than SP/CP in Phase 2.
  Rng rng(77);
  Dataset data = GenerateAnticorrelated(20000, 4, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 4)));
  double sp_reads = 0;
  double fp_reads = 0;
  for (int trial = 0; trial < 3; ++trial) {
    Vec w(4);
    for (int j = 0; j < 4; ++j) w[j] = rng.Uniform(0.2, 1.0);
    Result<GirComputation> sp = engine->ComputeGir(w, 20, Phase2Method::kSP);
    Result<GirComputation> fp = engine->ComputeGir(w, 20, Phase2Method::kFP);
    ASSERT_TRUE(sp.ok());
    ASSERT_TRUE(fp.ok());
    sp_reads += static_cast<double>(sp->stats.phase2_reads);
    fp_reads += static_cast<double>(fp->stats.phase2_reads);
  }
  EXPECT_LT(fp_reads, sp_reads);
}

TEST(GirMethodsTest, EngineRejectsBadK) {
  Rng rng(88);
  Dataset data = GenerateIndependent(50, 2, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 2)));
  EXPECT_FALSE(engine->ComputeGir(Vec{0.5, 0.5}, 0, Phase2Method::kFP).ok());
  EXPECT_FALSE(engine->ComputeGir(Vec{0.5, 0.5}, 51, Phase2Method::kFP).ok());
}

TEST(GirMethodsTest, MethodNamesRoundTrip) {
  for (Phase2Method m : {Phase2Method::kSP, Phase2Method::kCP,
                         Phase2Method::kFP, Phase2Method::kBruteForce}) {
    Result<Phase2Method> parsed = ParsePhase2Method(Phase2MethodName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(ParsePhase2Method("nope").ok());
}

}  // namespace
}  // namespace gir
