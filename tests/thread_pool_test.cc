// ThreadPool basics: task execution, futures, ParallelFor coverage and
// concurrency across worker threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <vector>

#include "common/thread_pool.h"

namespace gir {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  // Destructor drains the queue before joining.
  {
    ThreadPool scoped(2);
    for (int i = 0; i < 50; ++i) {
      scoped.Submit([&count] { count.fetch_add(1); });
    }
  }
  // The scoped pool is gone, so its 50 tasks completed; wait for ours.
  while (count.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, AsyncReturnsValue) {
  ThreadPool pool(2);
  std::future<int> f = pool.Async([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsStillWorks) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Async([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> seen(n);
  pool.ParallelFor(n, [&seen](size_t i) { seen[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForUsesMultipleWorkers) {
  ThreadPool pool(4);
  std::set<std::thread::id> ids;
  std::mutex mu;
  pool.ParallelFor(64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  // With 64 sleeping iterations over 4 workers, more than one worker
  // must have participated (even a 1-core host timeslices them).
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForMoreIterationsThanWorkers) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.ParallelFor(500, [&sum](size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 500L * 499L / 2);
}

}  // namespace
}  // namespace gir
