// Determinism and scoping contract of the fault injector: a plan's
// fault schedule is a pure function of (seed, site, op ordinal), so two
// runs driving the same single-threaded op sequence inject the
// bit-identical fault sequence; skip_ops and max_faults bound it; the
// DiskManager only ever faults through the checked ReadPage path.
#include <gtest/gtest.h>

#include <vector>

#include "storage/disk_manager.h"
#include "storage/fault_injector.h"

namespace gir {
namespace {

FaultPlan ReadPlan(uint64_t seed, double error_rate) {
  FaultPlan plan;
  plan.seed = seed;
  plan.read_error_rate = error_rate;
  return plan;
}

TEST(FaultInjectorTest, SameSeedReplaysBitIdenticalFaultSequence) {
  FaultInjector a(ReadPlan(42, 0.2));
  FaultInjector b(ReadPlan(42, 0.2));
  for (uint32_t op = 0; op < 2000; ++op) {
    const Status sa = a.OnPageRead(op % 17);
    const Status sb = b.OnPageRead(op % 17);
    ASSERT_EQ(sa.ok(), sb.ok()) << "op " << op;
    ASSERT_EQ(sa.code(), sb.code()) << "op " << op;
  }
  EXPECT_GT(a.read_faults(), 0u);
  EXPECT_EQ(a.read_faults(), b.read_faults());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), 0u);
}

TEST(FaultInjectorTest, DifferentSeedsGiveDifferentSchedules) {
  FaultInjector a(ReadPlan(1, 0.2));
  FaultInjector b(ReadPlan(2, 0.2));
  for (uint32_t op = 0; op < 2000; ++op) {
    (void)a.OnPageRead(0);
    (void)b.OnPageRead(0);
  }
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(FaultInjectorTest, ResetRestartsTheScheduleFromOpZero) {
  FaultInjector fi(ReadPlan(7, 0.3));
  std::vector<bool> first;
  for (uint32_t op = 0; op < 500; ++op) first.push_back(fi.OnPageRead(0).ok());
  const uint64_t fp = fi.fingerprint();
  fi.Reset();
  EXPECT_EQ(fi.fingerprint(), 0u);
  for (uint32_t op = 0; op < 500; ++op) {
    EXPECT_EQ(fi.OnPageRead(0).ok(), first[op]) << "op " << op;
  }
  EXPECT_EQ(fi.fingerprint(), fp);
}

TEST(FaultInjectorTest, FaultRateIsApproximatelyHonored) {
  FaultInjector fi(ReadPlan(99, 0.1));
  const uint64_t n = 20000;
  for (uint64_t op = 0; op < n; ++op) (void)fi.OnPageRead(0);
  // 10% +- a generous band (binomial std dev ~= 42 here).
  EXPECT_GT(fi.read_faults(), n / 10 - 400);
  EXPECT_LT(fi.read_faults(), n / 10 + 400);
}

TEST(FaultInjectorTest, SkipOpsShieldsTheWarmup) {
  FaultPlan plan = ReadPlan(5, 1.0);  // every unshielded op faults
  plan.skip_ops = 100;
  FaultInjector fi(plan);
  for (uint64_t op = 0; op < 100; ++op) {
    EXPECT_TRUE(fi.OnPageRead(0).ok()) << "op " << op;
  }
  EXPECT_EQ(fi.read_faults(), 0u);
  EXPECT_FALSE(fi.OnPageRead(0).ok());
}

TEST(FaultInjectorTest, MaxFaultsBudgetIsAHardCap) {
  FaultPlan plan = ReadPlan(5, 1.0);
  plan.max_faults = 3;
  FaultInjector fi(plan);
  uint64_t failed = 0;
  for (uint64_t op = 0; op < 100; ++op) {
    if (!fi.OnPageRead(0).ok()) ++failed;
  }
  EXPECT_EQ(failed, 3u);
  EXPECT_EQ(fi.total_faults(), 3u);
}

TEST(FaultInjectorTest, ReadFaultSurfacesAsUnavailableWithPageContext) {
  FaultInjector fi(ReadPlan(5, 1.0));
  const Status st = fi.OnPageRead(123);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("123"), std::string::npos);
}

TEST(FaultInjectorTest, WriteDecisionsAreDeterministicAndShaped) {
  FaultPlan plan;
  plan.seed = 11;
  plan.torn_write_rate = 0.5;
  plan.corrupt_rate = 0.5;
  FaultInjector a(plan);
  FaultInjector b(plan);
  bool torn = false;
  bool corrupt = false;
  for (int i = 0; i < 64; ++i) {
    const FaultInjector::WriteDecision da = a.OnSnapshotWrite();
    const FaultInjector::WriteDecision db = b.OnSnapshotWrite();
    EXPECT_EQ(da.fault, db.fault) << "write " << i;
    EXPECT_EQ(da.op, db.op);
    // The shaping draw is pure in (seed, op, salt).
    EXPECT_EQ(a.ShapeDraw(da.op, 0), b.ShapeDraw(db.op, 0));
    const double d = a.ShapeDraw(da.op, 0);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    torn |= da.fault == FaultInjector::WriteFault::kTorn;
    corrupt |= da.fault == FaultInjector::WriteFault::kCorrupt;
  }
  EXPECT_TRUE(torn);
  EXPECT_TRUE(corrupt);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(FaultInjectorTest, DiskManagerOnlyFaultsThroughCheckedReads) {
  DiskManager disk;
  FaultInjector fi(ReadPlan(3, 1.0));
  // No injector attached: checked reads are charged and never fail.
  EXPECT_TRUE(disk.ReadPage(0).ok());
  EXPECT_EQ(disk.stats().reads, 1u);

  disk.AttachFaultInjector(&fi);
  const Status st = disk.ReadPage(7);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  // The device attempt is still charged — a failed read happened.
  EXPECT_EQ(disk.stats().reads, 2u);
  // Plain accounting-only reads can never fault (and don't consume the
  // schedule).
  const uint64_t ops_before = fi.read_ops();
  disk.NoteRead();
  EXPECT_EQ(fi.read_ops(), ops_before);
  EXPECT_EQ(disk.stats().reads, 3u);

  disk.AttachFaultInjector(nullptr);
  EXPECT_TRUE(disk.ReadPage(7).ok());
}

}  // namespace
}  // namespace gir
