#!/usr/bin/env python3
"""Unit tests for the CI tooling (tools/*.py), stdlib-only.

The perf gates are code too: a bug in compare_bench or the schema
validator silently turns the bench gates into no-ops. Registered with
ctest as `tools_test` (label tier1).

Usage: python3 tests/tools_test.py
"""

import contextlib
import importlib.util
import io
import json
import os
import struct
import sys
import tempfile
import unittest
import zlib

TOOLS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir, "tools")


def load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(TOOLS_DIR, name + ".py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


compare_bench = load_tool("compare_bench")
validate_bench_json = load_tool("validate_bench_json")
bench_summary_md = load_tool("bench_summary_md")
wal_inspect = load_tool("wal_inspect")


def run_main(module, argv):
    """Runs a tool's main() capturing stdout; returns (exit_code, text)."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = module.main([module.__name__] + argv)
    return code, out.getvalue()


class TempTree:
    """Writes JSON docs into a temp dir and hands back their paths."""

    def __init__(self):
        self.dir = tempfile.TemporaryDirectory()

    def write(self, rel, doc):
        path = os.path.join(self.dir.name, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def cleanup(self):
        self.dir.cleanup()


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.tree = TempTree()
        self.addCleanup(self.tree.cleanup)

    def compare(self, baseline, fresh, metrics, extra=()):
        b = self.tree.write("baseline.json", baseline)
        f = self.tree.write("fresh.json", fresh)
        return run_main(compare_bench,
                        ["--baseline", b, "--fresh", f] +
                        [a for m in metrics for a in ("--metric", m)] +
                        list(extra))

    def test_higher_within_tolerance_passes(self):
        code, out = self.compare({"lp": {"speedup": 2.0}},
                                 {"lp": {"speedup": 1.8}},
                                 ["lp.speedup:higher:0.25"])
        self.assertEqual(code, 0)
        self.assertIn("ok   lp.speedup", out)

    def test_higher_regression_fails(self):
        code, out = self.compare({"lp": {"speedup": 2.0}},
                                 {"lp": {"speedup": 1.0}},
                                 ["lp.speedup:higher:0.25"])
        self.assertEqual(code, 1)
        self.assertIn("FAIL lp.speedup", out)

    def test_lower_direction(self):
        code, _ = self.compare({"m": {"p99": 10.0}}, {"m": {"p99": 11.0}},
                               ["m.p99:lower:0.25"])
        self.assertEqual(code, 0)
        code, _ = self.compare({"m": {"p99": 10.0}}, {"m": {"p99": 20.0}},
                               ["m.p99:lower:0.25"])
        self.assertEqual(code, 1)

    def test_equal_gates_booleans_exactly(self):
        code, _ = self.compare({"gate": {"pass": True}},
                               {"gate": {"pass": True}}, ["gate.pass:equal"])
        self.assertEqual(code, 0)
        code, _ = self.compare({"gate": {"pass": True}},
                               {"gate": {"pass": False}}, ["gate.pass:equal"])
        self.assertEqual(code, 1)

    def test_zero_baseline_is_skipped_with_warning(self):
        code, out = self.compare({"m": {"v": 0}}, {"m": {"v": 5}},
                                 ["m.v:higher"])
        self.assertEqual(code, 0)
        self.assertIn("warn m.v", out)

    def test_missing_metric_fails(self):
        code, out = self.compare({"a": 1.0}, {}, ["a"])
        self.assertEqual(code, 1)
        self.assertIn("missing from fresh", out)

    def test_default_tolerance_flag_applies(self):
        # 40% drop passes only when --tolerance raises the default 0.25.
        code, _ = self.compare({"a": 1.0}, {"a": 0.6}, ["a"])
        self.assertEqual(code, 1)
        code, _ = self.compare({"a": 1.0}, {"a": 0.6}, ["a"],
                               extra=["--tolerance", "0.5"])
        self.assertEqual(code, 0)

    def test_gates_manifest_runs_every_entry(self):
        self.tree.write("BENCH_A.json", {"gate": {"pass": True, "x": 2.0}})
        self.tree.write("BENCH_A.fresh.json",
                        {"gate": {"pass": True, "x": 1.9}})
        self.tree.write("BENCH_B.json", {"m": 1.0})
        self.tree.write("BENCH_B.fresh.json", {"m": 1.0})
        manifest = self.tree.write("sub/gates.json", {
            "gates": [
                {"baseline": "../BENCH_A.json",
                 "fresh": "../BENCH_A.fresh.json",
                 "metrics": ["gate.pass:equal", "gate.x:higher:0.3"]},
                {"baseline": "../BENCH_B.json",
                 "fresh": "../BENCH_B.fresh.json",
                 "metrics": ["m"]},
            ]
        })
        code, out = run_main(compare_bench, ["--gates", manifest])
        self.assertEqual(code, 0)
        self.assertIn("BENCH_A.json", out)
        self.assertIn("BENCH_B.json", out)

    def test_gates_manifest_fails_on_any_entry(self):
        self.tree.write("BENCH_A.json", {"gate": {"pass": True}})
        self.tree.write("BENCH_A.fresh.json", {"gate": {"pass": False}})
        self.tree.write("BENCH_B.json", {"m": 1.0})
        self.tree.write("BENCH_B.fresh.json", {"m": 1.0})
        manifest = self.tree.write("gates.json", {
            "gates": [
                {"baseline": "BENCH_A.json", "fresh": "BENCH_A.fresh.json",
                 "metrics": ["gate.pass:equal"]},
                {"baseline": "BENCH_B.json", "fresh": "BENCH_B.fresh.json",
                 "metrics": ["m"]},
            ]
        })
        code, out = run_main(compare_bench, ["--gates", manifest])
        self.assertEqual(code, 1)
        self.assertIn("FAIL gate.pass", out)
        self.assertIn("ok   m", out)  # later entries still run

    def test_gates_manifest_fails_on_missing_fresh_file(self):
        self.tree.write("BENCH_A.json", {"m": 1.0})
        manifest = self.tree.write("gates.json", {
            "gates": [{"baseline": "BENCH_A.json",
                       "fresh": "BENCH_A.fresh.json", "metrics": ["m"]}]
        })
        code, _ = run_main(compare_bench, ["--gates", manifest])
        self.assertEqual(code, 1)

    def test_gates_is_exclusive_with_metric_flags(self):
        manifest = self.tree.write("gates.json", {"gates": []})
        with self.assertRaises(SystemExit):
            with contextlib.redirect_stderr(io.StringIO()):
                compare_bench.main(["compare_bench", "--gates", manifest,
                                    "--metric", "a"])

    def test_bad_direction_is_rejected(self):
        with self.assertRaises(ValueError):
            compare_bench.parse_metric("a:sideways", 0.25)


class ValidateBenchJsonTest(unittest.TestCase):
    SCHEMA = {
        "type": "object",
        "required": ["bench", "gate"],
        "properties": {
            "bench": {"type": "string"},
            "gate": {"$ref": "#/definitions/gate"},
            "cells": {"type": "array",
                      "items": {"type": "object",
                                "required": ["n"],
                                "properties": {"n": {"type": "integer"}}}},
        },
        "definitions": {
            "gate": {"type": "object",
                     "required": ["pass", "ratio"],
                     "properties": {"pass": {"type": "boolean"},
                                    "ratio": {"type": "number"}}},
        },
    }

    def setUp(self):
        self.tree = TempTree()
        self.addCleanup(self.tree.cleanup)

    def validate(self, instance):
        s = self.tree.write("schema.json", self.SCHEMA)
        i = self.tree.write("instance.json", instance)
        return run_main(validate_bench_json, [s, i])

    def test_valid_instance_passes(self):
        code, _ = self.validate({"bench": "x",
                                 "gate": {"pass": True, "ratio": 1.5},
                                 "cells": [{"n": 3}]})
        self.assertEqual(code, 0)

    def test_missing_required_key_fails(self):
        code, _ = self.validate({"bench": "x", "gate": {"pass": True}})
        self.assertEqual(code, 1)

    def test_type_mismatch_through_ref_fails(self):
        code, _ = self.validate({"bench": "x",
                                 "gate": {"pass": "yes", "ratio": 1.0}})
        self.assertEqual(code, 1)

    def test_array_items_are_checked(self):
        code, _ = self.validate({"bench": "x",
                                 "gate": {"pass": True, "ratio": 1.0},
                                 "cells": [{"n": 3}, {"n": 2.5}]})
        self.assertEqual(code, 1)

    def test_integral_float_counts_as_integer(self):
        # printf-produced counters arrive as "3" or "3.0"; both must
        # satisfy {"type": "integer"}.
        code, _ = self.validate({"bench": "x",
                                 "gate": {"pass": True, "ratio": 1.0},
                                 "cells": [{"n": 3.0}]})
        self.assertEqual(code, 0)

    def test_bool_is_not_a_number(self):
        code, _ = self.validate({"bench": "x",
                                 "gate": {"pass": True, "ratio": True}})
        self.assertEqual(code, 1)

    def test_committed_schemas_accept_committed_baselines(self):
        repo = os.path.join(TOOLS_DIR, os.pardir)
        for pr in ("PR3", "PR4", "PR5", "PR6"):
            schema = os.path.join(repo, "bench",
                                  "BENCH_%s.schema.json" % pr)
            baseline = os.path.join(repo, "BENCH_%s.json" % pr)
            if not os.path.exists(baseline):
                continue  # baseline generated later in this PR's history
            code, _ = run_main(validate_bench_json, [schema, baseline])
            self.assertEqual(code, 0, "BENCH_%s.json vs its schema" % pr)


class BenchSummaryMdTest(unittest.TestCase):
    DOC = {
        "params": {"n": 100, "d": 3, "k": 10, "method": "FP"},
        "sweep": [
            {"batch": 64, "overlap": "high", "gated": True,
             "qps_lift": 1.9, "read_cut": 2.5,
             "fanout": {"qps": 100.0, "physical_reads": 400},
             "shared": {"qps": 190.0, "physical_reads": 160,
                        "duplicate_hits": 12}},
        ],
        "gate": {"pass": True, "batch_floor": 64, "min_read_cut": 2.0,
                 "min_qps_lift": 1.5, "read_cut_at_gate": 2.5,
                 "qps_lift_at_gate": 1.9},
    }

    def setUp(self):
        self.tree = TempTree()
        self.addCleanup(self.tree.cleanup)

    def test_renders_table_and_verdict(self):
        path = self.tree.write("doc.json", self.DOC)
        code, out = run_main(bench_summary_md, [path])
        self.assertEqual(code, 0)
        self.assertIn("| high/64 *", out)
        self.assertIn("**PASS**", out)

    def test_usage_error_without_args(self):
        with contextlib.redirect_stderr(io.StringIO()):
            code, _ = run_main(bench_summary_md, [])
        self.assertEqual(code, 2)


class WalInspectTest(unittest.TestCase):
    """Builds byte-exact .gwal segments with struct/zlib and checks the
    inspector walks them like engine recovery does: committed prefix,
    stop at first damage."""

    DIM = 2

    def setUp(self):
        self.tree = TempTree()
        self.addCleanup(self.tree.cleanup)

    def header(self, base_epoch):
        head = struct.pack("<IIQQ", wal_inspect.WAL_MAGIC,
                           wal_inspect.WAL_FORMAT, base_epoch, self.DIM)
        return head + struct.pack("<I", zlib.crc32(head))

    def record(self, epoch, inserts=1, deletes=(7,)):
        payload = struct.pack("<QQ", epoch, inserts)
        for i in range(inserts * self.DIM):
            payload += struct.pack("<d", 0.25 + 0.1 * i)
        payload += struct.pack("<Q", len(deletes))
        for rid in deletes:
            payload += struct.pack("<q", rid)
        return (struct.pack("<IQ", zlib.crc32(payload), len(payload))
                + payload + struct.pack("<I", wal_inspect.WAL_COMMIT_MAGIC))

    def segment(self, rel, base_epoch, epochs, damage=None):
        data = self.header(base_epoch) + b"".join(
            self.record(e) for e in epochs)
        if damage == "truncate":
            data = data[:len(data) - 10]  # mid-record cut
        elif damage == "flip":
            data = (data[:len(data) - 8]
                    + bytes([data[len(data) - 8] ^ 0x40])
                    + data[len(data) - 7:])
        elif damage == "magic":
            data = b"XXXX" + data[4:]
        path = os.path.join(self.tree.dir.name, rel)
        with open(path, "wb") as f:
            f.write(data)
        return path

    def test_clean_segment_parses_records_and_epochs(self):
        path = self.segment("wal-00000000000000000000.gwal", 0, [1, 2, 3])
        code, out = run_main(wal_inspect, ["--json", path])
        self.assertEqual(code, 0)
        doc = json.loads(out)
        self.assertTrue(doc["clean"])
        self.assertEqual(doc["committed_records"], 3)
        self.assertEqual(doc["committed_epoch_range"], [1, 3])
        seg = doc["segments"][0]
        self.assertEqual(seg["base_epoch"], 0)
        self.assertEqual(seg["dim"], self.DIM)
        self.assertEqual([r["epoch"] for r in seg["records"]], [1, 2, 3])
        self.assertEqual(seg["records"][0]["inserts"], 1)
        self.assertEqual(seg["records"][0]["deletes"], 1)
        self.assertEqual(seg["tail"]["state"], "clean")

    def test_torn_tail_keeps_committed_prefix(self):
        path = self.segment("wal-00000000000000000000.gwal", 0, [1, 2],
                            damage="truncate")
        code, out = run_main(wal_inspect, ["--json", path])
        self.assertEqual(code, 1)
        doc = json.loads(out)
        seg = doc["segments"][0]
        self.assertEqual(seg["committed_records"], 1)
        self.assertEqual(seg["tail"]["state"], "torn")
        # Damage starts exactly where record 2's frame starts.
        self.assertEqual(seg["tail"]["damage_offset"],
                         seg["records"][0]["offset"]
                         + seg["records"][0]["frame_bytes"])
        self.assertGreater(seg["tail"]["trailing_bytes"], 0)

    def test_flipped_byte_reports_corrupt_record(self):
        path = self.segment("wal-00000000000000000000.gwal", 0, [1, 2],
                            damage="flip")
        code, out = run_main(wal_inspect, ["--json", path])
        self.assertEqual(code, 1)
        doc = json.loads(out)
        seg = doc["segments"][0]
        self.assertEqual(seg["committed_records"], 1)
        self.assertEqual(seg["tail"]["state"], "corrupt")

    def test_bad_header_is_flagged(self):
        path = self.segment("wal-00000000000000000000.gwal", 0, [1],
                            damage="magic")
        code, out = run_main(wal_inspect, ["--json", path])
        self.assertEqual(code, 1)
        doc = json.loads(out)
        self.assertFalse(doc["segments"][0]["header_ok"])
        self.assertEqual(doc["segments"][0]["tail"]["state"], "bad-header")

    def test_directory_mode_walks_segments_in_base_order(self):
        self.segment("wal-00000000000000000002.gwal", 2, [3, 4])
        self.segment("wal-00000000000000000000.gwal", 0, [1, 2])
        code, out = run_main(wal_inspect, ["--json", self.tree.dir.name])
        self.assertEqual(code, 0)
        doc = json.loads(out)
        self.assertEqual([s["base_epoch"] for s in doc["segments"]], [0, 2])
        self.assertEqual(doc["committed_epoch_range"], [1, 4])

    def test_human_output_summarizes_damage(self):
        path = self.segment("wal-00000000000000000000.gwal", 0, [1, 2],
                            damage="truncate")
        code, out = run_main(wal_inspect, ["--records", path])
        self.assertEqual(code, 1)
        self.assertIn("TORN at offset", out)
        self.assertIn("epoch=1", out)
        self.assertIn("1 damaged", out)

    def test_usage_error_without_paths(self):
        code, _ = run_main(wal_inspect, ["--json"])
        self.assertEqual(code, 2)

    def test_missing_directory_is_an_io_error(self):
        code, out = run_main(wal_inspect,
                             [os.path.join(self.tree.dir.name, "absent")])
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main()
