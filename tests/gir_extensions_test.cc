// Extensions beyond the tests in gir_methods_test: the footnote-7
// Phase-1 tightening, the STB baseline, the paper's Figure 3 worked
// example, and the FP incident-star data structure in isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/engine.h"
#include "gir/fpnd.h"
#include "gir/phase1.h"
#include "gir/sensitivity.h"

namespace gir {
namespace {

// ---------- Paper Figure 3: the worked Phase-1 example ----------
TEST(PaperFigure3Test, Phase1HalfplanesMatchThePaper) {
  // Records p1..p4 with the exact attributes of Figure 3(a).
  Dataset data = Dataset::FromRows({{0.54, 0.50},   // p1
                                    {0.50, 0.48},   // p2
                                    {0.52, 0.35},   // p3
                                    {0.40, 0.40}}); // p4
  LinearScoring scoring(2);
  Vec q = {0.4, 0.6};
  // Scores of Figure 3(a).
  EXPECT_NEAR(scoring.Score(data.Get(0), q), 0.516, 1e-12);
  EXPECT_NEAR(scoring.Score(data.Get(1), q), 0.488, 1e-12);
  EXPECT_NEAR(scoring.Score(data.Get(2), q), 0.418, 1e-12);
  EXPECT_NEAR(scoring.Score(data.Get(3), q), 0.400, 1e-12);

  GirRegion region(2, q, {0, 1, 2, 3});
  AddPhase1Constraints(data, scoring, {0, 1, 2, 3}, &region);
  ASSERT_EQ(region.constraints().size(), 3u);
  // (p1-p2)·q' >= 0  =>  0.04 w1 + 0.02 w2 >= 0
  EXPECT_NEAR(region.constraints()[0].normal[0], 0.04, 1e-12);
  EXPECT_NEAR(region.constraints()[0].normal[1], 0.02, 1e-12);
  // (p2-p3)·q' >= 0  =>  -0.02 w1 + 0.13 w2 >= 0
  EXPECT_NEAR(region.constraints()[1].normal[0], -0.02, 1e-12);
  EXPECT_NEAR(region.constraints()[1].normal[1], 0.13, 1e-12);
  // (p3-p4)·q' >= 0  =>  0.12 w1 - 0.05 w2 >= 0
  EXPECT_NEAR(region.constraints()[2].normal[0], 0.12, 1e-12);
  EXPECT_NEAR(region.constraints()[2].normal[1], -0.05, 1e-12);
  // The original query satisfies all three strictly.
  EXPECT_TRUE(region.Contains(q));
}

// ---------- Footnote-7 Phase-1 tightening ----------
struct TightenCase {
  const char* dataset;
  int dim;
  int k;
};
class TighteningTest : public ::testing::TestWithParam<TightenCase> {};

TEST_P(TighteningTest, SameRegionFewerOrEqualReads) {
  const TightenCase& c = GetParam();
  Rng rng(3000 + c.dim);
  Result<Dataset> data = GenerateByName(c.dataset, 4000, c.dim, rng);
  ASSERT_TRUE(data.ok());
  DiskManager disk_a;
  GirEngineOptions plain;
  auto engine_a = OpenEngineOrDie(
      EngineConfig::FromDataset(&*data, &disk_a, MakeScoring("Linear", c.dim), plain));
  DiskManager disk_b;
  GirEngineOptions tight;
  tight.fp.phase1_tightening = true;
  auto engine_b = OpenEngineOrDie(
      EngineConfig::FromDataset(&*data, &disk_b, MakeScoring("Linear", c.dim), tight));

  for (int trial = 0; trial < 4; ++trial) {
    Vec w(c.dim);
    for (int j = 0; j < c.dim; ++j) w[j] = rng.Uniform(0.1, 1.0);
    Result<GirComputation> a = engine_a->ComputeGir(w, c.k, Phase2Method::kFP);
    Result<GirComputation> b = engine_b->ComputeGir(w, c.k, Phase2Method::kFP);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->topk.result, b->topk.result);
    // Note: tightening is a heuristic — skipping Phase-1-redundant
    // records can occasionally *weaken* the star's own pruning, so no
    // per-query read inequality holds; correctness (identical region)
    // is the invariant.
    for (int probe = 0; probe < 300; ++probe) {
      Vec q(c.dim);
      for (int j = 0; j < c.dim; ++j) q[j] = rng.Uniform();
      EXPECT_EQ(a->region.Contains(q), b->region.Contains(q))
          << "trial " << trial << " probe " << probe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TighteningTest,
                         ::testing::Values(TightenCase{"IND", 3, 10},
                                           TightenCase{"IND", 4, 20},
                                           TightenCase{"ANTI", 3, 10},
                                           TightenCase{"COR", 4, 5}));

// ---------- STB (Soliman et al.) baseline ----------
TEST(StbTest, BallIsInsideTheGir) {
  Rng rng(61);
  Dataset data = GenerateIndependent(2000, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  for (int trial = 0; trial < 6; ++trial) {
    Vec w = {rng.Uniform(0.2, 0.8), rng.Uniform(0.2, 0.8),
             rng.Uniform(0.2, 0.8)};
    Result<GirComputation> gir = engine->ComputeGir(w, 10, Phase2Method::kFP);
    ASSERT_TRUE(gir.ok());
    double r = StbRadius(gir->region);
    EXPECT_GT(r, 0.0);
    // Random points strictly inside the ball are inside the GIR.
    for (int probe = 0; probe < 200; ++probe) {
      Vec dir(3);
      for (int j = 0; j < 3; ++j) dir[j] = rng.Uniform(-1.0, 1.0);
      double norm = Norm(dir);
      if (norm < 1e-9) continue;
      Vec q = AddScaled(w, dir, 0.999 * r * rng.Uniform() / norm);
      EXPECT_TRUE(gir->region.Contains(q, 1e-12))
          << "STB ball escaped the GIR";
    }
    // Maximality: a slightly larger ball pokes out of the region, i.e.
    // some constraint is at distance exactly r.
    double min_dist = 1e300;
    for (const GirConstraint& c : gir->region.constraints()) {
      min_dist = std::min(min_dist, Dot(c.normal, w) / Norm(c.normal));
    }
    for (int j = 0; j < 3; ++j) {
      min_dist = std::min(min_dist, std::min(w[j], 1.0 - w[j]));
    }
    EXPECT_NEAR(r, min_dist, 1e-12);
  }
}

TEST(StbTest, BallVolumeFormula) {
  EXPECT_NEAR(BallVolume(2, 1.0), M_PI, 1e-9);
  EXPECT_NEAR(BallVolume(3, 1.0), 4.0 * M_PI / 3.0, 1e-9);
  EXPECT_NEAR(BallVolume(3, 0.5), 4.0 * M_PI / 3.0 / 8.0, 1e-9);
  EXPECT_NEAR(BallVolume(4, 1.0), M_PI * M_PI / 2.0, 1e-9);
}

TEST(StbTest, StbUnderestimatesGirVolume) {
  // The paper's §2 point: STB ⊆ GIR, so the ball volume understates the
  // immutable locus, often badly (the GIR is a thin cone, not a ball).
  Rng rng(62);
  Dataset data = GenerateIndependent(3000, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  Vec w = {0.5, 0.6, 0.7};
  Result<GirComputation> gir = engine->ComputeGir(w, 10, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());
  double gir_volume = gir->region.polytope().Volume();
  double stb_volume = BallVolume(3, StbRadius(gir->region));
  EXPECT_LT(stb_volume, gir_volume);
}

TEST(StbTest, ZeroForDegenerateQuery) {
  GirRegion region(2, Vec{0.5, 0.5}, {1});
  ConstraintProvenance prov;
  region.AddConstraint(Vec{1.0, -1.0}, prov);
  region.AddConstraint(Vec{-1.0, 1.0}, prov);  // q exactly on both planes
  EXPECT_DOUBLE_EQ(StbRadius(region), 0.0);
}

// ---------- IncidentStar in isolation ----------
TEST(IncidentStarTest, InitialStarHasDimFacets) {
  IncidentStar star(Vec{0.8, 0.7, 0.9});
  EXPECT_EQ(star.live_facet_count(), 3u);
  EXPECT_TRUE(star.CriticalRecordIds().empty());
}

TEST(IncidentStarTest, DominatedPointIsPruned) {
  IncidentStar star(Vec{0.8, 0.8});
  Result<bool> r = star.Insert(Vec{0.5, 0.5}, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);  // below both initial facets
  EXPECT_TRUE(star.CriticalRecordIds().empty());
}

TEST(IncidentStarTest, ExtremePointEntersStar) {
  IncidentStar star(Vec{0.8, 0.8});
  Result<bool> r = star.Insert(Vec{0.9, 0.2}, 7);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  std::vector<int> crit = star.CriticalRecordIds();
  ASSERT_EQ(crit.size(), 1u);
  EXPECT_EQ(crit[0], 7);
  EXPECT_EQ(star.live_facet_count(), 2u);  // d facets in 2-D always
}

TEST(IncidentStarTest, CriticalSetMatchesNormalConeOracle) {
  // The star's emitted constraints must carve exactly the normal cone:
  // q' (>=0) keeps the apex on top  <=>  q' satisfies all critical
  // constraints.
  Rng rng(71);
  for (int d : {2, 3, 4, 5}) {
    Vec apex(d, 0.95);
    std::vector<Vec> points;
    IncidentStar star(apex);
    for (int i = 0; i < 300; ++i) {
      Vec p(d);
      for (int j = 0; j < d; ++j) p[j] = rng.Uniform(0.0, 0.9);
      Result<bool> r = star.Insert(p, i);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      points.push_back(std::move(p));
    }
    std::set<int> critical;
    for (int id : star.CriticalRecordIds()) critical.insert(id);
    for (int probe = 0; probe < 200; ++probe) {
      Vec q(d);
      for (int j = 0; j < d; ++j) q[j] = rng.Uniform(0.01, 1.0);
      bool apex_wins = true;
      for (const Vec& p : points) {
        if (Dot(p, q) > Dot(apex, q)) {
          apex_wins = false;
          break;
        }
      }
      bool critical_ok = true;
      for (int id : critical) {
        if (Dot(points[id], q) > Dot(apex, q)) {
          critical_ok = false;
          break;
        }
      }
      EXPECT_EQ(apex_wins, critical_ok) << "d=" << d << " probe=" << probe;
    }
  }
}

TEST(IncidentStarTest, DuplicateOfVertexIsIgnored) {
  IncidentStar star(Vec{0.9, 0.9, 0.9});
  Vec p = {0.95, 0.2, 0.3};
  ASSERT_TRUE(*star.Insert(p, 1));
  Result<bool> again = star.Insert(p, 2);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);  // lies ON existing facets, not above
}

TEST(IncidentStarTest, FacetsCreatedMonotone) {
  Rng rng(72);
  IncidentStar star(Vec{0.9, 0.9, 0.9, 0.9});
  size_t created = star.facets_created();
  for (int i = 0; i < 100; ++i) {
    Vec p(4);
    for (int j = 0; j < 4; ++j) p[j] = rng.Uniform(0.0, 0.95);
    ASSERT_TRUE(star.Insert(p, i).ok());
    EXPECT_GE(star.facets_created(), created);
    created = star.facets_created();
    EXPECT_LE(star.live_facet_count(), star.facets_created());
  }
}

// ---------- FP seeding-heuristic equivalence ----------
TEST(FpSeedingTest, HeuristicDoesNotChangeTheRegion) {
  Rng rng(81);
  Dataset data = GenerateAnticorrelated(3000, 4, rng);
  DiskManager disk_a;
  GirEngineOptions with;
  with.fp.max_coordinate_seeding = true;
  auto engine_a = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk_a, MakeScoring("Linear", 4), with));
  DiskManager disk_b;
  GirEngineOptions without;
  without.fp.max_coordinate_seeding = false;
  auto engine_b = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk_b, MakeScoring("Linear", 4), without));
  Vec w = {0.5, 0.7, 0.4, 0.8};
  Result<GirComputation> a = engine_a->ComputeGir(w, 15, Phase2Method::kFP);
  Result<GirComputation> b = engine_b->ComputeGir(w, 15, Phase2Method::kFP);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int probe = 0; probe < 400; ++probe) {
    Vec q(4);
    for (int j = 0; j < 4; ++j) q[j] = rng.Uniform();
    EXPECT_EQ(a->region.Contains(q), b->region.Contains(q));
  }
}

// ---------- FP 2-D angular variant vs d-dim star ----------
TEST(Fp2dVsNdTest, IdenticalRegionsIn2D) {
  Rng rng(91);
  Dataset data = GenerateIndependent(2500, 2, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 2)));
  LinearScoring scoring(2);
  for (int trial = 0; trial < 6; ++trial) {
    Vec w = {rng.Uniform(0.1, 1.0), rng.Uniform(0.1, 1.0)};
    // Engine dispatches to the angular variant at d == 2.
    Result<GirComputation> via2d = engine->ComputeGir(w, 8, Phase2Method::kFP);
    ASSERT_TRUE(via2d.ok());
    // Run the d-dimensional star machinery on the same query.
    Result<TopKResult> topk = RunBrs(engine->tree(), scoring, w, 8);
    ASSERT_TRUE(topk.ok());
    GirRegion region_nd(2, w, topk->result);
    AddPhase1Constraints(data, scoring, topk->result, &region_nd);
    Result<Phase2Output> nd =
        RunFpNdPhase2(engine->tree(), scoring, w, *topk, &region_nd);
    ASSERT_TRUE(nd.ok());
    for (int probe = 0; probe < 400; ++probe) {
      Vec q = {rng.Uniform(), rng.Uniform()};
      EXPECT_EQ(via2d->region.Contains(q), region_nd.Contains(q))
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace gir
