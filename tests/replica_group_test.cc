// Replicated serving tier: replicas opened FromArena over shipped
// epoch files serve bit-identically to a fault-free single engine (per
// SIMD tier); the EpochShipper tracks per-replica lag and skips stale
// replicas; a corrupt ship is rejected by checksum and the old epoch
// keeps serving; the router fails over crashed replicas behind a
// circuit breaker, hedges slow primaries, and never serves a read from
// a replica behind its pinned epoch — including under a seeded
// kill/revive chaos schedule.
#include "serve/replica_group.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "dataset/generators.h"
#include "gir/engine.h"
#include "serve/router.h"
#include "storage/disk_manager.h"
#include "storage/snapshot_store.h"
#include "topk/scoring.h"

namespace gir::serve {
namespace {

constexpr size_t kDim = 3;
constexpr size_t kK = 8;

class TierGuard {
 public:
  TierGuard() : saved_(simd::ActiveTier()) {}
  ~TierGuard() { simd::ForceTier(saved_); }

 private:
  simd::Tier saved_;
};

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

Replica::ScoringFactory LinearScoring() {
  return [] { return MakeScoring("Linear", kDim); };
}

std::vector<Vec> SpreadWeights(size_t m, uint64_t seed = 777) {
  std::vector<Vec> weights;
  Rng rng(seed);
  for (size_t i = 0; i < m; ++i) {
    Vec w(kDim);
    double sum = 0.0;
    for (size_t j = 0; j < kDim; ++j) {
      w[j] = 0.05 + rng.Uniform();
      sum += w[j];
    }
    for (size_t j = 0; j < kDim; ++j) w[j] /= sum;
    weights.push_back(std::move(w));
  }
  return weights;
}

// A leader that publishes arena epochs: the master engine plus the
// SnapshotStore its epochs land in. PublishEpoch applies one seeded
// update batch and writes the new epoch's arena file.
struct Leader {
  Dataset data;
  DiskManager disk;
  std::unique_ptr<GirEngine> engine;
  std::string dir;
  SnapshotStore store;
  Rng rng{505};

  explicit Leader(const std::string& name, size_t n = 400)
      : data([&] {
          Rng data_rng(404);
          auto d = GenerateByName("IND", n, kDim, data_rng);
          EXPECT_TRUE(d.ok());
          return std::move(*d);
        }()),
        engine(OpenEngineOrDie(EngineConfig::FromDataset(
            &data, &disk, MakeScoring("Linear", kDim)))),
        dir(FreshDir(name)),
        store(dir) {
    EXPECT_TRUE(store.WriteArena(engine->flat_tree(), 0).ok());
  }

  uint64_t PublishEpoch() {
    UpdateBatch batch;
    for (int i = 0; i < 4; ++i) {
      Vec v(kDim);
      for (double& x : v) x = 0.05 + 0.9 * rng.Uniform();
      batch.inserts.push_back(std::move(v));
    }
    auto up = engine->ApplyUpdates(batch);
    EXPECT_TRUE(up.ok()) << up.status().message();
    EXPECT_TRUE(store.WriteArena(engine->flat_tree(), up->version).ok());
    return up->version;
  }
};

ReplicaGroupConfig ThreeReplicas(const std::string& base) {
  ReplicaGroupConfig config;
  for (int i = 0; i < 3; ++i) {
    ReplicaConfig rc;
    rc.dir = FreshDir(base + "_r" + std::to_string(i));
    config.replicas.push_back(rc);
  }
  config.scoring = LinearScoring();
  return config;
}

// A leader whose updates are WAL-logged, for the delta-shipping tests:
// arenas are still published per epoch (the fallback transport), but
// the WAL segments are what close replicas catch up from.
struct WalLeader {
  Dataset data;
  DiskManager disk;
  std::string wal_dir;
  std::unique_ptr<GirEngine> engine;
  std::string dir;
  SnapshotStore store;
  Rng rng{606};
  uint64_t published = 0;

  explicit WalLeader(const std::string& name, size_t n = 400)
      : data([&] {
          Rng data_rng(404);
          auto d = GenerateByName("IND", n, kDim, data_rng);
          EXPECT_TRUE(d.ok());
          return std::move(*d);
        }()),
        wal_dir(FreshDir(name + "_wal")),
        engine(OpenEngineOrDie(
            EngineConfig::FromDataset(&data, &disk,
                                      MakeScoring("Linear", kDim))
                .WithWal(wal_dir))),
        dir(FreshDir(name)),
        store(dir) {
    EXPECT_TRUE(store.WriteArena(engine->flat_tree(), 0).ok());
  }

  uint64_t PublishEpoch() {
    UpdateBatch batch;
    for (int i = 0; i < 3; ++i) {
      Vec v(kDim);
      for (double& x : v) x = 0.05 + 0.9 * rng.Uniform();
      batch.inserts.push_back(std::move(v));
    }
    batch.deletes = {static_cast<RecordId>(7 * (published + 1))};
    auto up = engine->ApplyUpdates(batch);
    EXPECT_TRUE(up.ok()) << up.status().message();
    EXPECT_TRUE(up->wal_logged);
    EXPECT_TRUE(store.WriteArena(engine->flat_tree(), up->version).ok());
    published = up->version;
    return up->version;
  }
};

TEST(ReplicaGroupTest, WalDeltaShipAdvancesReplicasToLeaderResults) {
  TierGuard guard;
  WalLeader leader("rg_delta_leader");
  auto group = ReplicaGroup::Open(ThreeReplicas("rg_delta"), leader.store);
  ASSERT_TRUE(group.ok()) << group.status().message();
  EpochShipper shipper(&leader.store, group->get(),
                       leader.engine->wal_store(), /*max_delta_lag=*/4);

  leader.PublishEpoch();
  const uint64_t v2 = leader.PublishEpoch();
  auto report = shipper.ShipLatest();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leader_epoch, v2);
  EXPECT_EQ(report->shipped, 3u);
  EXPECT_EQ(report->delta_shipped, 3u);  // lag 2 <= 4: all via WAL
  EXPECT_EQ(report->full_shipped, 0u);
  EXPECT_EQ(report->delta_fallbacks, 0u);
  EXPECT_EQ((*group)->MinEpoch(), v2);

  // Every replica answers exactly like the leader at the same epoch —
  // the update-vs-rebuild property the delta transport leans on.
  for (const Vec& w : SpreadWeights(10)) {
    auto want = leader.engine->ComputeGir(w, kK, Phase2Method::kFP);
    ASSERT_TRUE(want.ok());
    for (size_t i = 0; i < (*group)->size(); ++i) {
      auto got = (*group)->replica(i)->Compute(w, kK, Phase2Method::kFP);
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_EQ(got->topk.result, want->topk.result) << "replica " << i;
      EXPECT_EQ(got->topk.scores, want->topk.scores) << "replica " << i;
      EXPECT_EQ(got->snapshot_version, v2);
    }
  }

  // Idempotent follow-up: everyone is current, nothing ships.
  report = shipper.ShipLatest();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->up_to_date, 3u);
  EXPECT_EQ(report->shipped, 0u);
}

TEST(ReplicaGroupTest, WalDeltaFallsBackToFullShipOnLagOrDamage) {
  WalLeader leader("rg_delta_fb_leader");

  ReplicaGroupConfig config;
  ReplicaConfig clean;
  clean.dir = FreshDir("rg_delta_fb_r0");
  config.replicas.push_back(clean);
  ReplicaConfig flaky;
  flaky.dir = FreshDir("rg_delta_fb_r1");
  // The first WAL segment shipped to this replica lands corrupted; the
  // record CRCs catch it at replay and the delta adopt must fail
  // without advancing — then the full arena ship (clean) catches up.
  flaky.fault_plan.seed = 91;
  flaky.fault_plan.wal_corrupt_rate = 1.0;
  flaky.fault_plan.max_faults = 1;
  config.replicas.push_back(flaky);
  config.scoring = LinearScoring();

  auto group = ReplicaGroup::Open(config, leader.store);
  ASSERT_TRUE(group.ok()) << group.status().message();

  // Lag beyond the delta window: both replicas take the full ship.
  EpochShipper narrow(&leader.store, group->get(),
                      leader.engine->wal_store(), /*max_delta_lag=*/1);
  leader.PublishEpoch();
  const uint64_t v2 = leader.PublishEpoch();
  auto report = narrow.ShipLatest();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->shipped, 2u);
  EXPECT_EQ(report->delta_shipped, 0u);  // lag 2 > 1
  EXPECT_EQ(report->full_shipped, 2u);
  EXPECT_EQ((*group)->MinEpoch(), v2);

  // Within the window: the clean replica advances by delta, the flaky
  // one burns its injected fault on the shipped segment, falls back,
  // and still lands on the leader epoch.
  EpochShipper wide(&leader.store, group->get(),
                    leader.engine->wal_store(), /*max_delta_lag=*/4);
  const uint64_t v3 = leader.PublishEpoch();
  report = wide.ShipLatest();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->leader_epoch, v3);
  EXPECT_EQ(report->shipped, 2u);
  EXPECT_EQ(report->delta_shipped, 1u);
  EXPECT_EQ(report->delta_fallbacks, 1u);
  EXPECT_EQ(report->full_shipped, 1u);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ((*group)->MinEpoch(), v3);
  EXPECT_GE((*group)->replica(1)->open_failures(), 1u);

  // Nobody serves lies after the mixed transports.
  for (const Vec& w : SpreadWeights(6)) {
    auto want = leader.engine->ComputeGir(w, kK, Phase2Method::kFP);
    ASSERT_TRUE(want.ok());
    for (size_t i = 0; i < (*group)->size(); ++i) {
      auto got = (*group)->replica(i)->Compute(w, kK, Phase2Method::kFP);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->topk.result, want->topk.result) << "replica " << i;
      EXPECT_EQ(got->topk.scores, want->topk.scores) << "replica " << i;
    }
  }
}

TEST(ReplicaGroupTest, ReplicasServeShippedEpochBitIdenticalPerTier) {
  TierGuard guard;
  Leader leader("rg_bitident_leader");
  leader.PublishEpoch();

  auto group =
      ReplicaGroup::Open(ThreeReplicas("rg_bitident"), leader.store);
  ASSERT_TRUE(group.ok()) << group.status().message();
  EXPECT_EQ((*group)->MinEpoch(), 1u);
  EXPECT_EQ((*group)->MaxEpoch(), 1u);

  // The fault-free single engine every replica must match.
  DiskManager ref_disk;
  auto reference = OpenEngineOrDie(EngineConfig::FromArena(
      leader.dir, &ref_disk, MakeScoring("Linear", kDim)));

  for (simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::ForceTier(tier) != tier) continue;  // host can't run it
    for (const Vec& w : SpreadWeights(12)) {
      auto want = reference->ComputeGir(w, kK, Phase2Method::kFP);
      ASSERT_TRUE(want.ok());
      for (size_t i = 0; i < (*group)->size(); ++i) {
        auto got = (*group)->replica(i)->Compute(w, kK, Phase2Method::kFP);
        ASSERT_TRUE(got.ok()) << got.status().message();
        EXPECT_EQ(got->topk.result, want->topk.result);
        EXPECT_EQ(got->topk.scores, want->topk.scores);
        EXPECT_EQ(got->snapshot_version, want->snapshot_version);
      }
    }
  }
}

TEST(ReplicaGroupTest, ShipperTracksLagAndSkipsStaleReplicas) {
  Leader leader("rg_lag_leader");
  auto group = ReplicaGroup::Open(ThreeReplicas("rg_lag"), leader.store);
  ASSERT_TRUE(group.ok());
  EpochShipper shipper(&leader.store, group->get());

  // Everyone starts current: lag 0 across the board.
  auto report = shipper.ShipLatest();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->leader_epoch, 0u);
  EXPECT_EQ(report->up_to_date, 3u);
  EXPECT_EQ(report->lags, (std::vector<uint64_t>{0, 0, 0}));

  // A stale replica is deliberately skipped; its lag grows per epoch.
  (*group)->replica(1)->SetStale(true);
  leader.PublishEpoch();
  report = shipper.ShipLatest();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->leader_epoch, 1u);
  EXPECT_EQ(report->shipped, 2u);
  EXPECT_EQ(report->skipped_stale, 1u);
  EXPECT_EQ(report->lags, (std::vector<uint64_t>{0, 1, 0}));
  EXPECT_EQ(shipper.lag(1), 1u);

  leader.PublishEpoch();
  report = shipper.ShipLatest();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->lags, (std::vector<uint64_t>{0, 2, 0}));

  // Un-stale: the next ship catches it up in one hop.
  (*group)->replica(1)->SetStale(false);
  report = shipper.ShipLatest();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->shipped, 1u);
  EXPECT_EQ(report->lags, (std::vector<uint64_t>{0, 0, 0}));
  EXPECT_EQ((*group)->MinEpoch(), 2u);

  // Histogram: one observation per replica per ship (4 ships x 3).
  const auto& hist = shipper.lag_histogram();
  uint64_t total = 0;
  for (uint64_t bucket : hist) total += bucket;
  EXPECT_EQ(total, 12u);
  EXPECT_EQ(hist[1], 1u);  // the lag==1 observation
  EXPECT_EQ(hist[2], 1u);  // the lag==2 observation
}

TEST(ReplicaGroupTest, CorruptShipKeepsOldEpochServing) {
  Leader leader("rg_corrupt_leader");

  ReplicaConfig rc;
  rc.dir = FreshDir("rg_corrupt_r0");
  // First ship (the initial open) is clean; the second lands corrupt;
  // later ships are clean again.
  rc.fault_plan.seed = 77;
  rc.fault_plan.corrupt_rate = 1.0;
  rc.fault_plan.skip_ops = 1;
  rc.fault_plan.max_faults = 1;

  auto replica = Replica::Open(rc, leader.store, LinearScoring());
  ASSERT_TRUE(replica.ok()) << replica.status().message();
  EXPECT_EQ((*replica)->epoch(), 0u);

  const uint64_t v1 = leader.PublishEpoch();
  auto adopted = (*replica)->AdoptEpoch(leader.store, v1);
  // Corrupt-open domain: the shipped bytes fail their checksums; the
  // replica keeps serving its previous epoch instead of serving lies.
  ASSERT_FALSE(adopted.ok());
  EXPECT_EQ((*replica)->epoch(), 0u);
  EXPECT_EQ((*replica)->open_failures(), 1u);
  const Vec w = {0.5, 0.3, 0.2};
  auto still = (*replica)->Compute(w, kK, Phase2Method::kFP);
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->snapshot_version, 0u);

  // A clean re-ship overwrites the damaged file and advances.
  adopted = (*replica)->AdoptEpoch(leader.store, v1);
  ASSERT_TRUE(adopted.ok()) << adopted.status().message();
  EXPECT_EQ((*replica)->epoch(), v1);
}

TEST(RouterTest, FailsOverCrashedReplicaAndBreakerOpens) {
  Leader leader("rt_crash_leader");
  auto group = ReplicaGroup::Open(ThreeReplicas("rt_crash"), leader.store);
  ASSERT_TRUE(group.ok());

  RouterOptions opts;
  opts.breaker_threshold = 3;
  opts.breaker_open_ms = 5.0;
  opts.breaker_max_open_ms = 10.0;
  opts.hedge = false;  // isolate failover behavior
  Router router(group->get(), opts);

  (*group)->replica(0)->Kill();
  const auto weights = SpreadWeights(24);
  for (const Vec& w : weights) {
    auto reply = router.Route(w, kK, Phase2Method::kFP);
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    EXPECT_NE(reply->replica, 0);
  }
  RouterMetrics m = router.Snapshot();
  EXPECT_EQ(m.served, weights.size());
  // Round-robin put the dead replica first for ~1/3 of requests until
  // the breaker opened; each of those cost one failover dispatch.
  EXPECT_GE(m.failovers, 1u);
  EXPECT_GE(m.replicas[0].failures, 3u);
  EXPECT_NE(m.replicas[0].state, BreakerState::kClosed);

  // Revive; once the backoff expires a health probe closes the breaker
  // and the replica serves again.
  (*group)->replica(0)->Revive();
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  router.RunHealthChecks();
  m = router.Snapshot();
  EXPECT_EQ(m.replicas[0].state, BreakerState::kClosed);
  bool replica0_served = false;
  for (const Vec& w : weights) {
    auto reply = router.Route(w, kK, Phase2Method::kFP);
    ASSERT_TRUE(reply.ok());
    replica0_served |= reply->replica == 0;
  }
  EXPECT_TRUE(replica0_served);
}

TEST(RouterTest, HedgesSlowPrimaryAndChargesBoth) {
  Leader leader("rt_hedge_leader");
  auto group = ReplicaGroup::Open(ThreeReplicas("rt_hedge"), leader.store);
  ASSERT_TRUE(group.ok());

  Router router(group->get());
  (*group)->replica(0)->SetSlowMs(150.0);

  ExecPolicy policy;
  policy.hedge_delay_ms = 2.0;  // explicit hint overrides the p99 derivation
  for (const Vec& w : SpreadWeights(6)) {
    auto reply = router.Route(w, kK, Phase2Method::kFP, policy);
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    // Whoever won, the reply must be a real epoch-stamped answer.
    EXPECT_EQ(reply->served_epoch, 0u);
  }
  RouterMetrics m = router.Snapshot();
  EXPECT_EQ(m.served, 6u);
  // The slow replica was primary for ~2 of 6 requests: each of those
  // hedged after 2ms and the healthy peer won long before the 150ms
  // sleep finished. Both attempts are charged — the loser still lands
  // in the slow replica's served/failures ledger once it wakes.
  EXPECT_GE(m.hedges_dispatched, 1u);
  EXPECT_GE(m.hedge_wins, 1u);
  EXPECT_EQ(m.hedge_wins + m.hedge_losses, m.hedges_dispatched);
}

TEST(RouterTest, EpochPinnedFailoverNeverTimeTravels) {
  Leader leader("rt_pin_leader");
  auto group = ReplicaGroup::Open(ThreeReplicas("rt_pin"), leader.store);
  ASSERT_TRUE(group.ok());
  EpochShipper shipper(&leader.store, group->get());

  // Replica 2 goes stale at epoch 0; the rest advance to epoch 1.
  (*group)->replica(2)->SetStale(true);
  const uint64_t v1 = leader.PublishEpoch();
  ASSERT_TRUE(shipper.ShipLatest().ok());
  ASSERT_EQ((*group)->replica(2)->epoch(), 0u);

  RouterOptions opts;
  opts.hedge = false;
  Router router(group->get(), opts);

  // Reads pinned to the acknowledged update may only land on replicas
  // 0 and 1 — never the lagging one, even via failover.
  ExecPolicy pinned;
  pinned.pin_epoch = v1;
  const auto weights = SpreadWeights(18);
  for (const Vec& w : weights) {
    auto reply = router.Route(w, kK, Phase2Method::kFP, pinned);
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    EXPECT_GE(reply->served_epoch, v1);
    EXPECT_NE(reply->replica, 2);
  }

  // Kill one fresh replica: pinned reads fail over to the other fresh
  // one, still never to the stale replica.
  (*group)->replica(0)->Kill();
  for (const Vec& w : weights) {
    auto reply = router.Route(w, kK, Phase2Method::kFP, pinned);
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    EXPECT_EQ(reply->replica, 1);
    EXPECT_GE(reply->served_epoch, v1);
  }

  // Kill the last fresh replica: a pinned read now has no legal source
  // — the router refuses rather than time-traveling to epoch 0.
  (*group)->replica(1)->Kill();
  auto refused = router.Route(weights[0], kK, Phase2Method::kFP, pinned);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);

  // An unpinned read is still happy to be served from epoch 0.
  auto unpinned = router.Route(weights[0], kK, Phase2Method::kFP);
  ASSERT_TRUE(unpinned.ok()) << unpinned.status().message();
  EXPECT_EQ(unpinned->replica, 2);
  EXPECT_EQ(unpinned->served_epoch, 0u);

  EXPECT_EQ(router.Snapshot().pin_violations, 0u);
}

TEST(RouterTest, ValidatesPolicyAtTheBoundary) {
  Leader leader("rt_validate_leader");
  auto group = ReplicaGroup::Open(ThreeReplicas("rt_validate"), leader.store);
  ASSERT_TRUE(group.ok());
  Router router(group->get());
  const Vec w = {0.5, 0.3, 0.2};

  ExecPolicy bad;
  bad.hedge_delay_ms = -1.0;
  auto reply = router.Route(w, kK, Phase2Method::kFP, bad);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);

  bad = ExecPolicy{};
  bad.deadline_ms = std::numeric_limits<double>::quiet_NaN();
  reply = router.Route(w, kK, Phase2Method::kFP, bad);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

// Chaos: a seeded kill/revive schedule across the trace. With at most
// one replica down at a time, every request is served, every reply is
// bit-identical to the fault-free reference, and no pinned read is
// ever answered from behind its pin.
TEST(RouterTest, ChaosKillScheduleServesBitIdenticalReplies) {
  TierGuard guard;
  Leader leader("rt_chaos_leader");
  auto group = ReplicaGroup::Open(ThreeReplicas("rt_chaos"), leader.store);
  ASSERT_TRUE(group.ok());

  DiskManager ref_disk;
  auto reference = OpenEngineOrDie(EngineConfig::FromArena(
      leader.dir, &ref_disk, MakeScoring("Linear", kDim)));

  RouterOptions opts;
  opts.breaker_open_ms = 2.0;
  opts.breaker_max_open_ms = 8.0;
  Router router(group->get(), opts);

  Rng chaos(909);
  int down = -1;
  const auto weights = SpreadWeights(120, 31337);
  for (size_t q = 0; q < weights.size(); ++q) {
    if (q % 20 == 0) {
      if (down >= 0) (*group)->replica(static_cast<size_t>(down))->Revive();
      down = static_cast<int>(chaos.UniformInt(3));
      (*group)->replica(static_cast<size_t>(down))->Kill();
      router.RunHealthChecks();
    }
    auto reply = router.Route(weights[q], kK, Phase2Method::kFP);
    ASSERT_TRUE(reply.ok()) << "q=" << q << ": " << reply.status().message();
    auto want = reference->ComputeGir(weights[q], kK, Phase2Method::kFP);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(reply->topk, want->topk.result);
    EXPECT_EQ(reply->scores, want->topk.scores);
  }
  RouterMetrics m = router.Snapshot();
  EXPECT_EQ(m.served, weights.size());
  EXPECT_EQ(m.failed + m.unroutable, 0u);
  EXPECT_EQ(m.pin_violations, 0u);
}

}  // namespace
}  // namespace gir::serve
