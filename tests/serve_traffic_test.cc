// Traffic generator contract: fixed-seed determinism (bit-identical
// traces), monotone arrival times, Zipf key skew, burst/diurnal rate
// modulation, and — the piece the replayer leans on — update-batch
// validity: every delete in a generated trace targets a record that is
// live at that point of the stream, so the whole trace applies cleanly
// through GirEngine::ApplyUpdates.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/engine.h"
#include "serve/traffic_gen.h"
#include "storage/disk_manager.h"
#include "topk/scoring.h"

namespace gir::serve {
namespace {

TrafficConfig SmallConfig() {
  TrafficConfig c;
  c.seed = 77;
  c.dim = 3;
  c.k = 5;
  c.events = 400;
  c.base_qps = 2000.0;
  c.key_pool = 16;
  c.zipf_s = 1.2;
  return c;
}

TEST(TrafficGenTest, FixedSeedIsBitIdentical) {
  TrafficConfig c = SmallConfig();
  c.update_ratio = 0.1;
  c.initial_records = 50;
  c.jitter_prob = 0.3;
  Result<Trace> a = GenerateTrace(c);
  Result<Trace> b = GenerateTrace(c);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->events.size(), b->events.size());
  EXPECT_EQ(a->queries, b->queries);
  EXPECT_EQ(a->updates, b->updates);
  for (size_t i = 0; i < a->events.size(); ++i) {
    const TraceEvent& ea = a->events[i];
    const TraceEvent& eb = b->events[i];
    EXPECT_EQ(ea.arrival_ms, eb.arrival_ms) << i;  // bitwise doubles
    ASSERT_EQ(ea.kind, eb.kind) << i;
    EXPECT_EQ(ea.key, eb.key) << i;
    EXPECT_EQ(ea.weights, eb.weights) << i;
    EXPECT_EQ(ea.update.deletes, eb.update.deletes) << i;
    ASSERT_EQ(ea.update.inserts.size(), eb.update.inserts.size()) << i;
    for (size_t p = 0; p < ea.update.inserts.size(); ++p) {
      EXPECT_EQ(ea.update.inserts[p], eb.update.inserts[p]) << i;
    }
  }

  TrafficConfig other = c;
  other.seed = 78;
  Result<Trace> d = GenerateTrace(other);
  ASSERT_TRUE(d.ok());
  bool differs = false;
  for (size_t i = 0; i < d->events.size() && !differs; ++i) {
    differs = d->events[i].arrival_ms != a->events[i].arrival_ms;
  }
  EXPECT_TRUE(differs);
}

TEST(TrafficGenTest, ArrivalsAreMonotoneAtTheConfiguredRate) {
  TrafficConfig c = SmallConfig();
  c.events = 2000;
  Result<Trace> t = GenerateTrace(c);
  ASSERT_TRUE(t.ok());
  double prev = 0.0;
  for (const TraceEvent& ev : t->events) {
    EXPECT_GE(ev.arrival_ms, prev);
    prev = ev.arrival_ms;
  }
  // Mean offered rate within 20% of base_qps for a flat process.
  EXPECT_NEAR(t->OfferedQps(), c.base_qps, 0.2 * c.base_qps);
}

TEST(TrafficGenTest, ZipfSkewsKeysAndHotKeysRepeatBitwise) {
  TrafficConfig c = SmallConfig();
  c.events = 4000;
  c.zipf_s = 1.3;
  Result<Trace> t = GenerateTrace(c);
  ASSERT_TRUE(t.ok());
  std::map<uint32_t, size_t> counts;
  std::map<uint32_t, Vec> weights_of;
  for (const TraceEvent& ev : t->events) {
    ++counts[ev.key];
    auto [it, inserted] = weights_of.emplace(ev.key, ev.weights);
    if (!inserted) {
      // jitter_prob = 0: every occurrence of a key carries the exact
      // same weight vector (the preset-weights repeat the dedupe and
      // cache layers feed on).
      EXPECT_EQ(it->second, ev.weights) << "key " << ev.key;
    }
  }
  // Rank 0 must dominate the tail rank by a wide margin under s=1.3.
  const size_t head = counts.count(0) ? counts[0] : 0;
  const uint32_t tail_key = static_cast<uint32_t>(c.key_pool - 1);
  const size_t tail = counts.count(tail_key) ? counts[tail_key] : 0;
  EXPECT_GT(head, 5 * std::max<size_t>(tail, 1));
}

TEST(TrafficGenTest, BurstsCompressInterArrivalGaps) {
  TrafficConfig c = SmallConfig();
  c.events = 6000;
  c.base_qps = 1000.0;
  c.burst_factor = 8.0;
  c.burst_every_ms = 1000.0;
  c.burst_len_ms = 200.0;
  Result<Trace> t = GenerateTrace(c);
  ASSERT_TRUE(t.ok());
  size_t in_burst = 0;
  size_t outside = 0;
  for (const TraceEvent& ev : t->events) {
    const double phase =
        ev.arrival_ms - 1000.0 * std::floor(ev.arrival_ms / 1000.0);
    (phase < 200.0 ? in_burst : outside) += 1;
  }
  // Burst windows cover 20% of time at 8x rate: they should hold well
  // over half of all arrivals (8*0.2 / (8*0.2 + 0.8) ~ 2/3).
  EXPECT_GT(in_burst, outside);
}

TEST(TrafficGenTest, UpdateStreamAppliesCleanly) {
  TrafficConfig c = SmallConfig();
  c.events = 600;
  c.update_ratio = 0.25;
  c.updates_per_batch = 6;
  c.delete_fraction = 0.5;
  c.initial_records = 200;
  Result<Trace> t = GenerateTrace(c);
  ASSERT_TRUE(t.ok());
  ASSERT_GT(t->updates, 0u);

  Rng rng(11);
  Result<Dataset> data = GenerateByName("IND", c.initial_records, c.dim, rng);
  ASSERT_TRUE(data.ok());
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data.value(), &disk, MakeScoring("Linear", c.dim)));
  size_t applied = 0;
  for (const TraceEvent& ev : t->events) {
    if (ev.kind != TraceEventKind::kUpdate) continue;
    Result<UpdateStats> up = engine->ApplyUpdates(ev.update);
    ASSERT_TRUE(up.ok()) << "update " << applied << ": "
                         << up.status().ToString();
    ++applied;
  }
  EXPECT_EQ(applied, t->updates);
}

TEST(TrafficGenTest, RejectsOutOfDomainConfigs) {
  TrafficConfig c = SmallConfig();
  c.base_qps = 0.0;
  EXPECT_FALSE(GenerateTrace(c).ok());
  c = SmallConfig();
  c.diurnal_amplitude = 1.0;
  EXPECT_FALSE(GenerateTrace(c).ok());
  c = SmallConfig();
  c.key_pool = 0;
  EXPECT_FALSE(GenerateTrace(c).ok());
  c = SmallConfig();
  c.update_ratio = 0.5;
  c.delete_fraction = 1.0;
  c.initial_records = 0;
  EXPECT_FALSE(GenerateTrace(c).ok());
}

}  // namespace
}  // namespace gir::serve
