// Real-I/O storage contract of the mmap'd arena engine: an engine
// opened straight from an arena file answers bit-identically to the
// heap-frozen engine it was published from — ids, scores, constraint
// normals and charged IoStats — across every data distribution, scoring
// function and forced SIMD tier; damaged arena files (torn tail,
// flipped byte) are rejected at open by checksum and skipped by
// directory recovery; epoch advance on a follower is one validated
// pointer swap; and the frontier prefetcher's counters fire only on the
// mapped image under shared traversal.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "dataset/generators.h"
#include "gir/batch_engine.h"
#include "gir/engine.h"
#include "storage/arena_file.h"
#include "storage/disk_manager.h"
#include "storage/fault_injector.h"
#include "storage/snapshot_store.h"
#include "topk/scoring.h"

namespace gir {
namespace {

constexpr uint64_t kDataSeed = 808;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

Dataset MakeDist(const std::string& dist, size_t n, size_t d,
                 uint64_t seed) {
  Rng rng(seed);
  if (dist == "COR") return GenerateCorrelated(n, d, rng);
  if (dist == "ANTI") return GenerateAnticorrelated(n, d, rng);
  return GenerateIndependent(n, d, rng);
}

Vec MakeQuery(Rng& rng, size_t d) {
  Vec w(d);
  for (size_t j = 0; j < d; ++j) w[j] = rng.Uniform(0.05, 1.0);
  return w;
}

std::vector<simd::Tier> AvailableTiers() {
  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  const int detected = static_cast<int>(simd::DetectedTier());
  if (detected >= static_cast<int>(simd::Tier::kSse2)) {
    tiers.push_back(simd::Tier::kSse2);
  }
  if (detected >= static_cast<int>(simd::Tier::kAvx2)) {
    tiers.push_back(simd::Tier::kAvx2);
  }
  return tiers;
}

// Restores the startup dispatch tier when a test scope ends, so a
// failing assertion can't leak a forced tier into later tests.
class TierGuard {
 public:
  TierGuard() : saved_(simd::ActiveTier()) {}
  ~TierGuard() { simd::ForceTier(saved_); }

 private:
  simd::Tier saved_;
};

// Bit-for-bit equality of two complete computations: result order,
// scores, every constraint normal, and the charged I/O.
void ExpectSameComputation(const GirComputation& a, const GirComputation& b,
                           const std::string& label) {
  ASSERT_EQ(a.topk.result, b.topk.result) << label;
  ASSERT_EQ(a.topk.scores, b.topk.scores) << label;
  EXPECT_EQ(a.topk.io.reads, b.topk.io.reads) << label;
  EXPECT_EQ(a.stats.topk_reads, b.stats.topk_reads) << label;
  EXPECT_EQ(a.stats.phase2_reads, b.stats.phase2_reads) << label;
  ASSERT_EQ(a.region.constraints().size(), b.region.constraints().size())
      << label;
  for (size_t c = 0; c < a.region.constraints().size(); ++c) {
    EXPECT_EQ(a.region.constraints()[c].normal,
              b.region.constraints()[c].normal)
        << label << " constraint " << c;
  }
}

// The tentpole property: Open(FromArena) serves the published epoch
// bit-identically to the heap engine, across IND/COR/ANTI ×
// Linear/Polynomial/Mixed × every SIMD tier this machine dispatches.
TEST(ArenaMmapTest, BitIdenticalToHeapEngineAcrossTiers) {
  TierGuard guard;
  const char* kDists[] = {"IND", "COR", "ANTI"};
  const char* kScorings[] = {"Linear", "Polynomial", "Mixed"};
  const size_t n = 260;
  const size_t d = 4;
  const size_t k = 10;

  for (const char* dist : kDists) {
    Dataset data = MakeDist(dist, n, d, kDataSeed);
    for (const char* scoring : kScorings) {
      DiskManager heap_disk;
      auto heap = OpenEngineOrDie(
          EngineConfig::FromDataset(&data, &heap_disk, MakeScoring(scoring, d)));

      const std::string dir =
          FreshDir(std::string("arena_bit_") + dist + "_" + scoring);
      SnapshotStore store(dir);
      auto wrote = store.WriteArena(heap->flat_tree(), 0);
      ASSERT_TRUE(wrote.ok()) << wrote.status().message();
      EXPECT_EQ(wrote->injected, FaultInjector::WriteFault::kNone);

      DiskManager mmap_disk;
      auto mapped = GirEngine::Open(
          EngineConfig::FromArena(dir, &mmap_disk, MakeScoring(scoring, d)));
      ASSERT_TRUE(mapped.ok()) << mapped.status().message();
      EXPECT_FALSE((*mapped)->has_master_tree());
      EXPECT_EQ((*mapped)->dataset_version(), 0u);
      EXPECT_EQ((*mapped)->dataset().size(), data.size());

      for (simd::Tier tier : AvailableTiers()) {
        simd::ForceTier(tier);
        Rng qrng(kDataSeed + 7);
        for (int q = 0; q < 4; ++q) {
          Vec w = MakeQuery(qrng, d);
          auto want = heap->ComputeGir(w, k, Phase2Method::kFP);
          auto got = (*mapped)->ComputeGir(w, k, Phase2Method::kFP);
          ASSERT_TRUE(want.ok()) << want.status().message();
          ASSERT_TRUE(got.ok()) << got.status().message();
          ExpectSameComputation(
              *want, *got,
              std::string(dist) + "/" + scoring + "/" +
                  simd::TierName(tier) + "/q" + std::to_string(q));
        }
      }
    }
  }
}

// A torn publish (truncated tail behind a durable rename) is rejected
// by ArenaFile::Open and skipped — with the damage counted — by
// RecoverLatestArena, which falls back to the newest intact epoch.
TEST(ArenaMmapTest, TornArenaIsRejectedAndRecoverySkipsIt) {
  Dataset data = MakeDist("IND", 200, 3, kDataSeed + 1);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  const std::string dir = FreshDir("arena_torn");

  SnapshotStore clean(dir);
  ASSERT_TRUE(clean.WriteArena(engine->flat_tree(), 1).ok());

  FaultPlan plan;
  plan.seed = 41;
  plan.torn_write_rate = 1.0;
  FaultInjector fi(plan);
  SnapshotStore faulty(dir, &fi);
  auto wrote = faulty.WriteArena(engine->flat_tree(), 2);
  // The publish itself reports success — a crashed write does not
  // announce itself; detection belongs to open/recovery.
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote->injected, FaultInjector::WriteFault::kTorn);
  EXPECT_LT(std::filesystem::file_size(wrote->path), wrote->bytes);

  auto open = ArenaFile::Open(wrote->path);
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.status().code(), StatusCode::kDataLoss);

  auto pick = clean.RecoverLatestArena();
  ASSERT_TRUE(pick.ok()) << pick.status().message();
  EXPECT_EQ(pick->version, 1u);
  EXPECT_EQ(pick->scanned, 2u);
  EXPECT_EQ(pick->rejected, 1u);

  // Open-from-directory lands on the surviving epoch.
  DiskManager disk2;
  auto mapped = GirEngine::Open(
      EngineConfig::FromArena(dir, &disk2, MakeScoring("Linear", 3)));
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  EXPECT_EQ((*mapped)->dataset_version(), 1u);
}

// One flipped payload byte leaves the file size intact — only the
// section CRC can tell — and is still rejected before any byte is
// served.
TEST(ArenaMmapTest, CorruptArenaIsRejectedByChecksum) {
  Dataset data = MakeDist("IND", 200, 3, kDataSeed + 2);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  const std::string dir = FreshDir("arena_corrupt");

  FaultPlan plan;
  plan.seed = 42;
  plan.corrupt_rate = 1.0;
  FaultInjector fi(plan);
  SnapshotStore faulty(dir, &fi);
  auto wrote = faulty.WriteArena(engine->flat_tree(), 3);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote->injected, FaultInjector::WriteFault::kCorrupt);
  EXPECT_EQ(std::filesystem::file_size(wrote->path), wrote->bytes);

  auto open = ArenaFile::Open(wrote->path);
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.status().code(), StatusCode::kDataLoss);

  // With every candidate damaged, recovery refuses rather than serving
  // bad bytes, and says how much it scanned.
  auto pick = faulty.RecoverLatestArena();
  ASSERT_FALSE(pick.ok());
  EXPECT_EQ(pick.status().code(), StatusCode::kNotFound);

  DiskManager disk2;
  auto mapped = GirEngine::Open(
      EngineConfig::FromArena(dir, &disk2, MakeScoring("Linear", 3)));
  ASSERT_FALSE(mapped.ok());
}

// The follower epoch-advance path: a leader mutates and publishes arena
// N+1; the follower AdvanceToArena's onto it with one validated pointer
// swap and then answers bit-identically to the mutated leader. Engines
// with a master tree refuse the call.
TEST(ArenaMmapTest, AdvanceToArenaSwapsEpochsInPlace) {
  Dataset data = MakeDist("IND", 240, 3, kDataSeed + 3);
  DiskManager leader_disk;
  auto leader = OpenEngineOrDie(EngineConfig::FromDataset(
      &data, &leader_disk, MakeScoring("Linear", 3)));
  const std::string dir = FreshDir("arena_advance");
  SnapshotStore store(dir);
  ASSERT_TRUE(store.WriteArena(leader->flat_tree(), 0).ok());

  DiskManager follower_disk;
  auto follower = OpenEngineOrDie(EngineConfig::FromArena(
      dir, &follower_disk, MakeScoring("Linear", 3)));
  EXPECT_EQ(follower->dataset_version(), 0u);

  // Only arena engines advance; the leader keeps its own refreeze path.
  auto wrong = leader->AdvanceToArena(dir + "/" +
                                      SnapshotStore::ArenaFileName(0));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);

  UpdateBatch batch;
  batch.deletes = {5, 9};
  batch.inserts = {{0.31, 0.62, 0.18}};
  ASSERT_TRUE(leader->ApplyUpdates(batch).ok());
  ASSERT_EQ(leader->dataset_version(), 1u);
  ASSERT_TRUE(store.WriteArena(leader->flat_tree(), 1).ok());

  auto advanced = follower->AdvanceToArena(
      dir + "/" + SnapshotStore::ArenaFileName(1));
  ASSERT_TRUE(advanced.ok()) << advanced.status().message();
  EXPECT_EQ(*advanced, 1u);
  EXPECT_EQ(follower->dataset_version(), 1u);
  EXPECT_EQ(follower->dataset().live_size(), data.live_size());

  Rng qrng(kDataSeed + 11);
  for (int q = 0; q < 3; ++q) {
    Vec w = MakeQuery(qrng, 3);
    auto want = leader->ComputeGir(w, 8, Phase2Method::kFP);
    auto got = follower->ComputeGir(w, 8, Phase2Method::kFP);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ExpectSameComputation(*want, *got, "post-advance q" + std::to_string(q));
    EXPECT_EQ(got->snapshot_version, 1u);
  }

  // Advancing onto a missing or damaged file leaves the served epoch
  // untouched.
  auto missing = follower->AdvanceToArena(dir + "/" +
                                          SnapshotStore::ArenaFileName(9));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(follower->dataset_version(), 1u);
}

// Frontier prefetch: shared traversal over the mapped image issues
// madvise readahead and accounts every unique first touch as a hit or a
// miss; turning ExecPolicy::prefetch off zeroes the issue counter; and
// the heap-resident image never counts anything. Results stay
// bit-identical throughout.
TEST(ArenaMmapTest, PrefetchCountersFireOnlyOnMappedImage) {
  Dataset data = MakeDist("IND", 400, 3, kDataSeed + 4);
  DiskManager heap_disk;
  auto heap = OpenEngineOrDie(EngineConfig::FromDataset(
      &data, &heap_disk, MakeScoring("Linear", 3)));
  const std::string dir = FreshDir("arena_prefetch");
  SnapshotStore store(dir);
  ASSERT_TRUE(store.WriteArena(heap->flat_tree(), 0).ok());
  DiskManager mmap_disk;
  auto mapped = OpenEngineOrDie(EngineConfig::FromArena(
      dir, &mmap_disk, MakeScoring("Linear", 3)));

  std::vector<Vec> weights;
  Rng qrng(kDataSeed + 13);
  for (int q = 0; q < 12; ++q) weights.push_back(MakeQuery(qrng, 3));

  BatchOptions opts;
  opts.threads = 1;
  opts.populate_cache = false;
  opts.exec.shared_traversal = true;
  opts.exec.group_width = 8;

  BatchEngine heap_batch(heap.get(), opts);
  BatchEngine mmap_batch(mapped.get(), opts);

  auto want = heap_batch.ComputeBatch(weights, 10, Phase2Method::kFP);
  auto got = mmap_batch.ComputeBatch(weights, 10, Phase2Method::kFP);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(want->items.size(), got->items.size());
  for (size_t i = 0; i < want->items.size(); ++i) {
    ASSERT_TRUE(want->items[i].status.ok());
    ASSERT_TRUE(got->items[i].status.ok());
    EXPECT_EQ(want->items[i].topk, got->items[i].topk) << "query " << i;
    EXPECT_EQ(want->items[i].reads, got->items[i].reads) << "query " << i;
  }

  // Heap image: the prefetcher has nothing to readahead into.
  EXPECT_EQ(want->stats.prefetch_issued, 0u);
  EXPECT_EQ(want->stats.prefetch_hits + want->stats.prefetch_misses, 0u);
  // Mapped image: readahead was issued and every unique physical fetch
  // was classified as resident-or-faulted.
  EXPECT_GT(got->stats.prefetch_issued, 0u);
  EXPECT_GT(got->stats.prefetch_hits + got->stats.prefetch_misses, 0u);

  ExecPolicy quiet = opts.exec;
  quiet.prefetch = false;
  auto off = mmap_batch.ComputeBatch(weights, 10, Phase2Method::kFP, quiet);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->stats.prefetch_issued, 0u);
  for (size_t i = 0; i < off->items.size(); ++i) {
    EXPECT_EQ(off->items[i].topk, got->items[i].topk) << "query " << i;
  }
}

// The arena file itself round-trips its geometry, and its resident-set
// controls (the larger-than-RAM bench's lever) behave: Evict drops
// residency, TouchNode faults a page back in and reports the prior
// state, PrefetchNodes is at worst advisory.
TEST(ArenaMmapTest, ArenaFileResidencyControls) {
  Dataset data = MakeDist("IND", 300, 3, kDataSeed + 5);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  const std::string dir = FreshDir("arena_resident");
  SnapshotStore store(dir);
  auto wrote = store.WriteArena(engine->flat_tree(), 7);
  ASSERT_TRUE(wrote.ok());

  auto opened = ArenaFile::Open(wrote->path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  const ArenaFile& arena = **opened;
  EXPECT_EQ(arena.version(), 7u);
  EXPECT_EQ(arena.dim(), 3u);
  EXPECT_EQ(arena.dataset_rows(), data.size());
  EXPECT_GT(arena.node_count(), 0u);
  EXPECT_GE(arena.root(), 0);
  EXPECT_EQ(arena.file_bytes() % kArenaAlign, 0u);

  arena.Evict();
  // A first touch after eviction must fault the page in; afterwards the
  // same node reports resident.
  const PageId root = static_cast<PageId>(arena.root());
  arena.TouchNode(root);
  EXPECT_TRUE(arena.TouchNode(root));
  EXPECT_GT(arena.ResidentBytes(), 0u);

  PageId pages[1] = {root};
  arena.PrefetchNodes(pages, 1);  // advisory; must not crash or throw
}

}  // namespace
}  // namespace gir
