// Crash-safety contract of the snapshot store: a recovered epoch is
// bit-identical to the saved one (coordinates, tombstones, tree page
// image — hence simulated I/O and query output), recovery always picks
// the newest *valid* snapshot, and torn or corrupted files are rejected
// by checksum instead of trusted.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataset/generators.h"
#include "gir/engine.h"
#include "index/rtree_codec.h"
#include "storage/disk_manager.h"
#include "storage/snapshot_store.h"
#include "topk/scoring.h"

namespace gir {
namespace {

constexpr uint64_t kDataSeed = 404;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

Dataset FreshData(size_t n = 400, size_t dim = 3) {
  Rng rng(kDataSeed);
  auto data = GenerateByName("IND", n, dim, rng);
  EXPECT_TRUE(data.ok());
  return std::move(*data);
}

void ExpectSameDataset(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.dim(), b.dim());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.live_size(), b.live_size());
  for (size_t i = 0; i < a.size(); ++i) {
    const RecordId id = static_cast<RecordId>(i);
    ASSERT_EQ(a.IsLive(id), b.IsLive(id)) << "record " << i;
    VecView ra = a.Get(id);
    VecView rb = b.Get(id);
    for (size_t j = 0; j < a.dim(); ++j) {
      ASSERT_EQ(ra[j], rb[j]) << "record " << i << " dim " << j;
    }
  }
}

TEST(SnapshotStoreTest, RoundTripIsBitIdentical) {
  Dataset data = FreshData();
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", data.dim())));

  // Mutate once so tombstones and a non-zero epoch are part of the
  // image being persisted.
  UpdateBatch batch;
  batch.deletes = {3, 17, 42};
  batch.inserts = {{0.21, 0.84, 0.33}, {0.55, 0.12, 0.97}};
  ASSERT_TRUE(engine->ApplyUpdates(batch).ok());
  ASSERT_EQ(engine->dataset_version(), 1u);

  SnapshotStore store(FreshDir("snap_roundtrip"));
  auto wrote = store.WriteSnapshot(engine->dataset(), engine->tree(),
                                   engine->dataset_version());
  ASSERT_TRUE(wrote.ok()) << wrote.status().message();
  EXPECT_EQ(wrote->injected, FaultInjector::WriteFault::kNone);
  EXPECT_GT(wrote->bytes, 0u);
  EXPECT_TRUE(std::filesystem::exists(wrote->path));

  DiskManager disk2;
  auto rec = store.RecoverLatest(&disk2);
  ASSERT_TRUE(rec.ok()) << rec.status().message();
  EXPECT_EQ(rec->version, 1u);
  EXPECT_EQ(rec->scanned, 1u);
  EXPECT_EQ(rec->rejected, 0u);
  ExpectSameDataset(engine->dataset(), *rec->dataset);

  // The recovered master tree has the saved page image 1:1.
  auto img_before = SaveRTreeImage(engine->tree());
  auto img_after = SaveRTreeImage(*rec->tree);
  ASSERT_TRUE(img_before.ok());
  ASSERT_TRUE(img_after.ok());
  EXPECT_EQ(*img_before, *img_after);

  // And so a restored engine answers queries bit-identically, down to
  // the simulated I/O charged. Open runs its own recovery scan on a
  // fresh disk so the page image loads exactly once per DiskManager.
  DiskManager disk3;
  auto restored = OpenEngineOrDie(EngineConfig::FromSnapshotDir(
      store.dir(), &disk3, MakeScoring("Linear", engine->dataset().dim())));
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->dataset_version(), 1u);
  const Vec w = {0.5, 0.3, 0.2};
  auto before = engine->ComputeGir(w, 10, Phase2Method::kFP);
  auto after = restored->ComputeGir(w, 10, Phase2Method::kFP);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->topk.result, after->topk.result);
  EXPECT_EQ(before->topk.scores, after->topk.scores);
  EXPECT_EQ(before->topk.io.reads, after->topk.io.reads);
  EXPECT_EQ(before->stats.phase2_reads, after->stats.phase2_reads);
  EXPECT_EQ(before->region.constraints().size(),
            after->region.constraints().size());
  EXPECT_EQ(after->snapshot_version, 1u);
}

TEST(SnapshotStoreTest, NewestValidVersionWins) {
  Dataset data = FreshData(200);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", data.dim())));
  SnapshotStore store(FreshDir("snap_newest"));
  for (uint64_t v : {4u, 9u, 2u}) {
    ASSERT_TRUE(store.WriteSnapshot(engine->dataset(), engine->tree(), v).ok());
  }
  DiskManager disk2;
  auto rec = store.RecoverLatest(&disk2);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->version, 9u);
  EXPECT_EQ(rec->scanned, 3u);
  EXPECT_EQ(rec->rejected, 0u);
  EXPECT_NE(rec->path.find(SnapshotStore::FileName(9)), std::string::npos);
}

TEST(SnapshotStoreTest, TornWriteIsRejectedAndOlderEpochSurvives) {
  Dataset data = FreshData(200);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", data.dim())));
  const std::string dir = FreshDir("snap_torn");

  SnapshotStore clean(dir);
  ASSERT_TRUE(clean.WriteSnapshot(engine->dataset(), engine->tree(), 1).ok());

  FaultPlan plan;
  plan.seed = 31;
  plan.torn_write_rate = 1.0;
  FaultInjector fi(plan);
  SnapshotStore faulty(dir, &fi);
  auto wrote = faulty.WriteSnapshot(engine->dataset(), engine->tree(), 2);
  // The write itself reports success — a crashed publish does not
  // announce itself; detection is recovery's job.
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote->injected, FaultInjector::WriteFault::kTorn);
  EXPECT_LT(std::filesystem::file_size(wrote->path), wrote->bytes);
  EXPECT_EQ(fi.torn_writes(), 1u);

  DiskManager disk2;
  auto rec = clean.RecoverLatest(&disk2);
  ASSERT_TRUE(rec.ok()) << rec.status().message();
  EXPECT_EQ(rec->version, 1u);
  EXPECT_EQ(rec->scanned, 2u);
  EXPECT_EQ(rec->rejected, 1u);
  ExpectSameDataset(engine->dataset(), *rec->dataset);
}

TEST(SnapshotStoreTest, CorruptedPayloadIsRejectedByChecksum) {
  Dataset data = FreshData(200);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", data.dim())));
  const std::string dir = FreshDir("snap_corrupt");

  SnapshotStore clean(dir);
  ASSERT_TRUE(clean.WriteSnapshot(engine->dataset(), engine->tree(), 5).ok());

  FaultPlan plan;
  plan.seed = 32;
  plan.corrupt_rate = 1.0;
  FaultInjector fi(plan);
  SnapshotStore faulty(dir, &fi);
  auto wrote = faulty.WriteSnapshot(engine->dataset(), engine->tree(), 6);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote->injected, FaultInjector::WriteFault::kCorrupt);
  // Same size as the intact file — only a checksum can tell.
  EXPECT_EQ(std::filesystem::file_size(wrote->path), wrote->bytes);
  EXPECT_EQ(fi.corrupt_writes(), 1u);

  DiskManager disk2;
  auto rec = clean.RecoverLatest(&disk2);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->version, 5u);
  EXPECT_EQ(rec->rejected, 1u);
}

TEST(SnapshotStoreTest, EmptyOrAllInvalidDirectoryIsNotFound) {
  const std::string dir = FreshDir("snap_empty");
  std::filesystem::create_directories(dir);
  SnapshotStore store(dir);
  DiskManager disk;
  auto rec = store.RecoverLatest(&disk);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kNotFound);

  // A directory holding only garbage under the snapshot naming scheme
  // is equally unrecoverable — but the rejection is counted.
  std::ofstream junk(std::filesystem::path(dir) /
                     SnapshotStore::FileName(7));
  junk << "this is not a snapshot";
  junk.close();
  rec = store.RecoverLatest(&disk);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotStoreTest, RestoredEngineContinuesTheEpochSequence) {
  Dataset data = FreshData(300);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", data.dim())));
  UpdateBatch batch;
  batch.deletes = {1, 2};
  ASSERT_TRUE(engine->ApplyUpdates(batch).ok());
  ASSERT_TRUE(engine->ApplyUpdates(UpdateBatch{{{0.4, 0.4, 0.4}}, {}}).ok());
  ASSERT_EQ(engine->dataset_version(), 2u);

  SnapshotStore store(FreshDir("snap_continue"));
  ASSERT_TRUE(
      store.WriteSnapshot(engine->dataset(), engine->tree(), 2).ok());

  DiskManager disk2;
  auto restored = OpenEngineOrDie(EngineConfig::FromSnapshotDir(
      store.dir(), &disk2, MakeScoring("Linear", engine->dataset().dim())));
  ASSERT_NE(restored, nullptr);
  ASSERT_EQ(restored->dataset_version(), 2u);

  // The next update publishes epoch 3, exactly as the pre-crash engine
  // would have.
  UpdateBatch next;
  next.inserts = {{0.6, 0.1, 0.8}};
  next.deletes = {5};
  auto up_restored = restored->ApplyUpdates(next);
  ASSERT_TRUE(up_restored.ok()) << up_restored.status().message();
  EXPECT_EQ(up_restored->version, 3u);
  auto up_original = engine->ApplyUpdates(next);
  ASSERT_TRUE(up_original.ok());

  // And both timelines remain bit-identical.
  ExpectSameDataset(engine->dataset(), restored->dataset());
  const Vec w = {0.2, 0.5, 0.3};
  auto a = engine->ComputeGir(w, 8, Phase2Method::kFP);
  auto b = restored->ComputeGir(w, 8, Phase2Method::kFP);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->topk.result, b->topk.result);
  EXPECT_EQ(a->topk.scores, b->topk.scores);
  EXPECT_EQ(a->topk.io.reads, b->topk.io.reads);
}

// Keep-last-N retention reclaims old epochs per format, never the
// newest valid one — even at keep_last_n == 1 — and keep_last_n == 0
// is refused outright.
TEST(SnapshotStoreTest, GarbageCollectKeepsLastNPerFormat) {
  Dataset data = FreshData(200);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", data.dim())));
  SnapshotStore store(FreshDir("snap_gc"));
  for (uint64_t v = 1; v <= 5; ++v) {
    ASSERT_TRUE(store.WriteSnapshot(engine->dataset(), engine->tree(), v).ok());
    ASSERT_TRUE(store.WriteArena(engine->flat_tree(), v).ok());
  }

  auto refused = store.GarbageCollect(0);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);

  auto gc = store.GarbageCollect(2);
  ASSERT_TRUE(gc.ok()) << gc.status().message();
  EXPECT_EQ(gc->removed_snapshots, 3u);
  EXPECT_EQ(gc->removed_arenas, 3u);
  EXPECT_EQ(gc->kept, 4u);
  for (uint64_t v = 1; v <= 3; ++v) {
    EXPECT_FALSE(std::filesystem::exists(
        std::filesystem::path(store.dir()) / SnapshotStore::FileName(v)));
    EXPECT_FALSE(std::filesystem::exists(
        std::filesystem::path(store.dir()) / SnapshotStore::ArenaFileName(v)));
  }

  // Both formats still recover their newest epoch after the sweep.
  DiskManager disk2;
  auto rec = store.RecoverLatest(&disk2);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->version, 5u);
  auto pick = store.RecoverLatestArena();
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(pick->version, 5u);

  // keep_last_n == 1 trims to exactly the newest valid epoch of each
  // format, and an idempotent re-run removes nothing further.
  auto gc1 = store.GarbageCollect(1);
  ASSERT_TRUE(gc1.ok());
  EXPECT_EQ(gc1->removed_snapshots, 1u);
  EXPECT_EQ(gc1->removed_arenas, 1u);
  auto gc_again = store.GarbageCollect(1);
  ASSERT_TRUE(gc_again.ok());
  EXPECT_EQ(gc_again->removed_snapshots, 0u);
  EXPECT_EQ(gc_again->removed_arenas, 0u);
  EXPECT_EQ(gc_again->kept, 2u);
  DiskManager disk3;
  ASSERT_TRUE(store.RecoverLatest(&disk3).ok());
}

// A damaged file newer than the newest valid epoch does not count as
// "newest" for retention: GC keeps every valid epoch it would
// otherwise trim against it, and never reclaims the file recovery
// still depends on.
TEST(SnapshotStoreTest, GarbageCollectNeverWidensTheDataLossWindow) {
  Dataset data = FreshData(200);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", data.dim())));
  const std::string dir = FreshDir("snap_gc_torn");
  SnapshotStore clean(dir);
  ASSERT_TRUE(clean.WriteSnapshot(engine->dataset(), engine->tree(), 1).ok());
  ASSERT_TRUE(clean.WriteSnapshot(engine->dataset(), engine->tree(), 2).ok());

  FaultPlan plan;
  plan.seed = 53;
  plan.torn_write_rate = 1.0;
  FaultInjector fi(plan);
  SnapshotStore faulty(dir, &fi);
  auto torn = faulty.WriteSnapshot(engine->dataset(), engine->tree(), 3);
  ASSERT_TRUE(torn.ok());
  ASSERT_EQ(torn->injected, FaultInjector::WriteFault::kTorn);

  auto gc = clean.GarbageCollect(1);
  ASSERT_TRUE(gc.ok());
  // v1 (valid, older than newest valid v2, beyond keep=1) goes; v2 is
  // the newest valid and stays; torn v3 is newer than v2 and stays.
  EXPECT_EQ(gc->removed_snapshots, 1u);
  EXPECT_EQ(gc->kept, 2u);
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) /
                                      SnapshotStore::FileName(2)));
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) /
                                      SnapshotStore::FileName(3)));

  DiskManager disk2;
  auto rec = clean.RecoverLatest(&disk2);
  ASSERT_TRUE(rec.ok()) << rec.status().message();
  EXPECT_EQ(rec->version, 2u);
  EXPECT_EQ(rec->rejected, 1u);
}

// GC racing recovery: a writer keeps publishing epochs and trimming to
// keep-last-N while a reader loops full recovery scans. Every recovery
// lands on a valid epoch (a file deleted underfoot is counted rejected
// and a newer one wins) and the recovered version never moves backward.
TEST(SnapshotStoreTest, GarbageCollectRacingRecoveryAlwaysServesAnEpoch) {
  Dataset data = FreshData(120);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", data.dim())));
  const std::string dir = FreshDir("snap_gc_race");
  constexpr uint64_t kEpochs = 24;

  std::atomic<uint64_t> published{0};
  std::thread writer([&] {
    SnapshotStore store(dir);
    for (uint64_t v = 1; v <= kEpochs; ++v) {
      auto wrote = store.WriteSnapshot(engine->dataset(), engine->tree(), v);
      EXPECT_TRUE(wrote.ok()) << wrote.status().message();
      published.store(v, std::memory_order_release);
      auto gc = store.GarbageCollect(3);
      EXPECT_TRUE(gc.ok()) << gc.status().message();
    }
  });

  SnapshotStore reader(dir);
  while (published.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  uint64_t last_seen = 0;
  size_t recoveries = 0;
  while (published.load(std::memory_order_acquire) < kEpochs) {
    DiskManager scratch;
    auto rec = reader.RecoverLatest(&scratch);
    ASSERT_TRUE(rec.ok()) << rec.status().message();
    EXPECT_GE(rec->version, last_seen);
    last_seen = rec->version;
    ++recoveries;
  }
  writer.join();

  EXPECT_GT(recoveries, 0u);
  DiskManager disk2;
  auto final_rec = reader.RecoverLatest(&disk2);
  ASSERT_TRUE(final_rec.ok());
  EXPECT_EQ(final_rec->version, kEpochs);
  ExpectSameDataset(engine->dataset(), *final_rec->dataset);
}

// A directory holding both formats: each recovery path scans only its
// own format, so the newest valid epoch wins independently per format
// — arenas do not shadow snapshots or vice versa.
TEST(SnapshotStoreTest, MixedFormatDirectoryRecoversNewestValidPerFormat) {
  Dataset data = FreshData(200);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", data.dim())));
  const std::string dir = FreshDir("snap_mixed");
  SnapshotStore store(dir);
  for (uint64_t v : {1u, 2u, 3u}) {
    ASSERT_TRUE(store.WriteSnapshot(engine->dataset(), engine->tree(), v).ok());
  }
  for (uint64_t v : {2u, 4u}) {
    ASSERT_TRUE(store.WriteArena(engine->flat_tree(), v).ok());
  }

  DiskManager disk2;
  auto rec = store.RecoverLatest(&disk2);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->version, 3u);
  EXPECT_EQ(rec->scanned, 3u);  // arena files are not snapshot candidates

  auto pick = store.RecoverLatestArena();
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(pick->version, 4u);
  EXPECT_EQ(pick->scanned, 2u);  // snapshot files are not arena candidates

  // Tearing the newest arena only moves the arena pick back to its
  // older valid epoch; snapshot recovery is untouched.
  FaultPlan plan;
  plan.seed = 59;
  plan.torn_write_rate = 1.0;
  FaultInjector fi(plan);
  SnapshotStore faulty(dir, &fi);
  auto torn = faulty.WriteArena(engine->flat_tree(), 5);
  ASSERT_TRUE(torn.ok());
  ASSERT_EQ(torn->injected, FaultInjector::WriteFault::kTorn);

  auto pick2 = store.RecoverLatestArena();
  ASSERT_TRUE(pick2.ok());
  EXPECT_EQ(pick2->version, 4u);
  EXPECT_EQ(pick2->rejected, 1u);
  DiskManager disk3;
  auto rec2 = store.RecoverLatest(&disk3);
  ASSERT_TRUE(rec2.ok());
  EXPECT_EQ(rec2->version, 3u);
  EXPECT_EQ(rec2->rejected, 0u);

  // The engine-level open paths agree with the store-level picks.
  DiskManager disk4;
  auto from_snap = OpenEngineOrDie(EngineConfig::FromSnapshotDir(
      dir, &disk4, MakeScoring("Linear", data.dim())));
  EXPECT_EQ(from_snap->dataset_version(), 3u);
  DiskManager disk5;
  auto from_arena = OpenEngineOrDie(EngineConfig::FromArena(
      dir, &disk5, MakeScoring("Linear", data.dim())));
  EXPECT_EQ(from_arena->dataset_version(), 4u);
}

}  // namespace
}  // namespace gir
