#include <gtest/gtest.h>

#include <algorithm>

#include "dataset/dataset.h"
#include "dataset/generators.h"
#include "dataset/real_data_sim.h"
#include "skyline/skyline.h"

namespace gir {
namespace {

TEST(DatasetTest, AppendAndGet) {
  Dataset d(3);
  d.Append(Vec{0.1, 0.2, 0.3});
  d.Append(Vec{0.4, 0.5, 0.6});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dim(), 3u);
  EXPECT_DOUBLE_EQ(d.Get(1)[2], 0.6);
  EXPECT_EQ(d.GetVec(0), (Vec{0.1, 0.2, 0.3}));
}

TEST(DatasetTest, FromRows) {
  Dataset d = Dataset::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.Get(0)[1], 1.0);
}

TEST(DatasetTest, NormalizeToUnitCube) {
  Dataset d = Dataset::FromRows({{10.0, -5.0}, {20.0, 5.0}, {15.0, 0.0}});
  d.NormalizeToUnitCube();
  EXPECT_DOUBLE_EQ(d.Get(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(d.Get(1)[0], 1.0);
  EXPECT_DOUBLE_EQ(d.Get(2)[0], 0.5);
  EXPECT_DOUBLE_EQ(d.Get(0)[1], 0.0);
  EXPECT_DOUBLE_EQ(d.Get(1)[1], 1.0);
}

TEST(DatasetTest, NormalizeConstantDimension) {
  Dataset d = Dataset::FromRows({{1.0, 3.0}, {2.0, 3.0}});
  d.NormalizeToUnitCube();  // constant dim must not divide by zero
  EXPECT_DOUBLE_EQ(d.Get(0)[1], 0.0);
  EXPECT_DOUBLE_EQ(d.Get(1)[1], 0.0);
}

class GeneratorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorTest, InUnitCubeAndRightShape) {
  Rng rng(1);
  Result<Dataset> d = GenerateByName(GetParam(), 2000, 4, rng);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 2000u);
  EXPECT_EQ(d->dim(), 4u);
  for (size_t i = 0; i < d->size(); ++i) {
    for (double x : d->Get(static_cast<RecordId>(i))) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, GeneratorTest,
                         ::testing::Values("IND", "COR", "ANTI"));

TEST(GeneratorTest, UnknownNameRejected) {
  Rng rng(1);
  EXPECT_FALSE(GenerateByName("WAT", 10, 2, rng).ok());
}

TEST(GeneratorTest, SkylineOrderingAntiGtIndGtCor) {
  // The defining property of the three benchmarks: skyline cardinality
  // ANTI >> IND >> COR.
  Rng rng(7);
  const size_t n = 4000;
  const size_t d = 4;
  Dataset ind = GenerateIndependent(n, d, rng);
  Dataset cor = GenerateCorrelated(n, d, rng);
  Dataset anti = GenerateAnticorrelated(n, d, rng);
  std::vector<RecordId> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = static_cast<RecordId>(i);
  size_t s_ind = ComputeSkyline(ind, all).size();
  size_t s_cor = ComputeSkyline(cor, all).size();
  size_t s_anti = ComputeSkyline(anti, all).size();
  EXPECT_GT(s_anti, 2 * s_ind);
  EXPECT_GT(s_ind, s_cor);
}

TEST(GeneratorTest, CorrelationSigns) {
  Rng rng(3);
  const size_t n = 5000;
  auto pearson = [](const Dataset& d, size_t a, size_t b) {
    double ma = 0, mb = 0;
    const size_t n2 = d.size();
    for (size_t i = 0; i < n2; ++i) {
      ma += d.Get(static_cast<RecordId>(i))[a];
      mb += d.Get(static_cast<RecordId>(i))[b];
    }
    ma /= n2;
    mb /= n2;
    double cov = 0, va = 0, vb = 0;
    for (size_t i = 0; i < n2; ++i) {
      double xa = d.Get(static_cast<RecordId>(i))[a] - ma;
      double xb = d.Get(static_cast<RecordId>(i))[b] - mb;
      cov += xa * xb;
      va += xa * xa;
      vb += xb * xb;
    }
    return cov / std::sqrt(va * vb);
  };
  Dataset cor = GenerateCorrelated(n, 3, rng);
  Dataset anti = GenerateAnticorrelated(n, 3, rng);
  EXPECT_GT(pearson(cor, 0, 1), 0.5);
  EXPECT_LT(pearson(anti, 0, 1), -0.1);
}

TEST(RealDataSimTest, HouseShape) {
  Rng rng(5);
  Dataset house = MakeHouseLike(rng, 20000);
  EXPECT_EQ(house.dim(), 6u);
  EXPECT_EQ(house.size(), 20000u);
  for (size_t i = 0; i < house.size(); i += 97) {
    for (double x : house.Get(static_cast<RecordId>(i))) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

TEST(RealDataSimTest, HotelShapeAndDiscreteStars) {
  Rng rng(6);
  Dataset hotel = MakeHotelLike(rng, 20000);
  EXPECT_EQ(hotel.dim(), 4u);
  // Stars dimension takes at most 5 distinct values.
  std::vector<double> stars;
  for (size_t i = 0; i < hotel.size(); ++i) {
    stars.push_back(hotel.Get(static_cast<RecordId>(i))[0]);
  }
  std::sort(stars.begin(), stars.end());
  stars.erase(std::unique(stars.begin(), stars.end()), stars.end());
  EXPECT_LE(stars.size(), 5u);
}

TEST(RealDataSimTest, DefaultCardinalitiesMatchPaper) {
  Rng rng(8);
  // Tiny draws with explicit n keep the test fast; the default
  // parameters encode the paper's cardinalities.
  Dataset house = MakeHouseLike(rng, 100);
  Dataset hotel = MakeHotelLike(rng, 100);
  EXPECT_EQ(house.size(), 100u);
  EXPECT_EQ(hotel.size(), 100u);
}

}  // namespace
}  // namespace gir
