#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/convex_hull.h"

namespace gir {
namespace {

std::vector<Vec> CubeCorners(size_t d) {
  std::vector<Vec> pts;
  for (size_t mask = 0; mask < (1u << d); ++mask) {
    Vec p(d);
    for (size_t j = 0; j < d; ++j) p[j] = (mask >> j) & 1 ? 1.0 : 0.0;
    pts.push_back(std::move(p));
  }
  return pts;
}

TEST(FindInitialSimplexTest, FindsFullDimSimplex) {
  std::vector<Vec> pts = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0},
                          {0, 0, 1}, {1, 1, 1}};
  Result<std::vector<int>> s = FindInitialSimplex(pts, 3);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 4u);
}

TEST(FindInitialSimplexTest, RejectsPlanarPoints) {
  std::vector<Vec> pts = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}};
  EXPECT_FALSE(FindInitialSimplex(pts, 3).ok());
}

TEST(ConvexHullTest, Simplex3D) {
  std::vector<Vec> pts = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  Result<ConvexHull> hull = ConvexHull::Build(pts);
  ASSERT_TRUE(hull.ok());
  EXPECT_EQ(hull->facets().size(), 4u);
  EXPECT_EQ(hull->vertex_indices().size(), 4u);
  EXPECT_NEAR(hull->Volume(), 1.0 / 6.0, 1e-9);
}

TEST(ConvexHullTest, CubeVolumeByDim) {
  for (size_t d = 2; d <= 5; ++d) {
    std::vector<Vec> pts = CubeCorners(d);
    // Interior points must not affect the hull.
    Rng rng(d);
    for (int i = 0; i < 50; ++i) {
      Vec p(d);
      for (size_t j = 0; j < d; ++j) p[j] = rng.Uniform(0.1, 0.9);
      pts.push_back(std::move(p));
    }
    Result<ConvexHull> hull = ConvexHull::Build(pts);
    ASSERT_TRUE(hull.ok()) << "d=" << d << ": " << hull.status().ToString();
    EXPECT_EQ(hull->vertex_indices().size(), 1u << d) << "d=" << d;
    EXPECT_NEAR(hull->Volume(), 1.0, 1e-6) << "d=" << d;
  }
}

TEST(ConvexHullTest, ContainsAllInputPoints) {
  Rng rng(99);
  for (size_t d = 2; d <= 6; ++d) {
    std::vector<Vec> pts;
    for (int i = 0; i < 200; ++i) {
      Vec p(d);
      for (size_t j = 0; j < d; ++j) p[j] = rng.Uniform();
      pts.push_back(std::move(p));
    }
    Result<ConvexHull> hull = ConvexHull::Build(pts);
    ASSERT_TRUE(hull.ok()) << "d=" << d;
    for (const Vec& p : pts) {
      EXPECT_TRUE(hull->Contains(p, 1e-7)) << "d=" << d;
    }
    // Far-away points are outside.
    Vec far(d, 2.0);
    EXPECT_FALSE(hull->Contains(far));
  }
}

TEST(ConvexHullTest, NeighborConsistency) {
  Rng rng(123);
  std::vector<Vec> pts;
  for (int i = 0; i < 120; ++i) {
    Vec p(4);
    for (size_t j = 0; j < 4; ++j) p[j] = rng.Uniform();
    pts.push_back(std::move(p));
  }
  Result<ConvexHull> hull = ConvexHull::Build(pts);
  ASSERT_TRUE(hull.ok());
  const auto& facets = hull->facets();
  for (size_t f = 0; f < facets.size(); ++f) {
    ASSERT_EQ(facets[f].neighbors.size(), 4u);
    for (int nb : facets[f].neighbors) {
      ASSERT_GE(nb, 0);
      ASSERT_LT(nb, static_cast<int>(facets.size()));
      // Neighbor relation must be symmetric.
      bool found = false;
      for (int back : facets[nb].neighbors) {
        if (back == static_cast<int>(f)) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(ConvexHullTest, VolumeMatchesMonteCarlo) {
  Rng rng(7);
  std::vector<Vec> pts;
  for (int i = 0; i < 60; ++i) {
    Vec p(3);
    for (size_t j = 0; j < 3; ++j) p[j] = rng.Uniform();
    pts.push_back(std::move(p));
  }
  Result<ConvexHull> hull = ConvexHull::Build(pts);
  ASSERT_TRUE(hull.ok());
  double exact = hull->Volume();
  uint64_t hits = 0;
  const uint64_t samples = 200000;
  for (uint64_t s = 0; s < samples; ++s) {
    Vec p = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    if (hull->Contains(p)) ++hits;
  }
  double mc = static_cast<double>(hits) / samples;
  EXPECT_NEAR(exact, mc, 0.01);
}

TEST(ConvexHullTest, JoggleHandlesDegenerateData) {
  // Many co-planar points in 3D plus a couple off-plane: hull is
  // degenerate in parts and requires joggling to stay simplicial.
  std::vector<Vec> pts;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.Uniform(), rng.Uniform(), 0.5});
  }
  pts.push_back({0.5, 0.5, 0.0});
  pts.push_back({0.5, 0.5, 1.0});
  Result<ConvexHull> hull = ConvexHull::Build(pts);
  ASSERT_TRUE(hull.ok()) << hull.status().ToString();
  for (const Vec& p : pts) {
    EXPECT_TRUE(hull->Contains(p, 1e-6));
  }
}

TEST(ConvexHullTest, FullyDegenerateFails) {
  // All points on a line in 3D: no full-dimensional hull even after
  // joggle... joggle actually makes it full-dimensional, so expect OK
  // with tiny volume OR a clean failure; either way no crash.
  std::vector<Vec> pts;
  for (int i = 0; i < 10; ++i) {
    double t = i / 10.0;
    pts.push_back({t, t, t});
  }
  ConvexHullOptions opt;
  opt.enable_joggle = false;
  EXPECT_FALSE(ConvexHull::Build(pts, opt).ok());
}

TEST(ConvexHullTest, TooFewPoints) {
  std::vector<Vec> pts = {{0, 0, 0}, {1, 0, 0}};
  EXPECT_FALSE(ConvexHull::Build(pts).ok());
}

TEST(ConvexHullTest, HullOfHullVerticesHasSameVolume) {
  Rng rng(42);
  std::vector<Vec> pts;
  for (int i = 0; i < 300; ++i) {
    Vec p(4);
    for (size_t j = 0; j < 4; ++j) p[j] = rng.Uniform();
    pts.push_back(std::move(p));
  }
  Result<ConvexHull> hull = ConvexHull::Build(pts);
  ASSERT_TRUE(hull.ok());
  std::vector<Vec> verts;
  for (int v : hull->vertex_indices()) verts.push_back(pts[v]);
  Result<ConvexHull> hull2 = ConvexHull::Build(verts);
  ASSERT_TRUE(hull2.ok());
  EXPECT_NEAR(hull->Volume(), hull2->Volume(), 1e-6);
  EXPECT_EQ(hull2->vertex_indices().size(), verts.size());
}

// Property sweep: random point clouds at several dimensionalities.
class HullPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HullPropertyTest, RandomCloudsAreEnclosed) {
  const int d = GetParam();
  Rng rng(1000 + d);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Vec> pts;
    int n = 30 + trial * 40;
    for (int i = 0; i < n; ++i) {
      Vec p(d);
      for (int j = 0; j < d; ++j) p[j] = rng.Uniform();
      pts.push_back(std::move(p));
    }
    Result<ConvexHull> hull = ConvexHull::Build(pts);
    ASSERT_TRUE(hull.ok()) << "d=" << d << " trial=" << trial;
    for (const Vec& p : pts) {
      ASSERT_TRUE(hull->Contains(p, 1e-7));
    }
    double vol = hull->Volume();
    EXPECT_GT(vol, 0.0);
    EXPECT_LT(vol, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HullPropertyTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace gir
