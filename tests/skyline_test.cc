#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dataset/generators.h"
#include "skyline/bbs.h"
#include "skyline/dominance.h"
#include "skyline/skyline.h"
#include "topk/brs.h"

namespace gir {
namespace {

// Brute-force skyline of D \ R.
std::vector<RecordId> BruteSkylineExcluding(const Dataset& data,
                                            const std::vector<RecordId>& r) {
  std::vector<bool> excluded(data.size(), false);
  for (RecordId id : r) excluded[id] = true;
  std::vector<RecordId> out;
  for (size_t i = 0; i < data.size(); ++i) {
    if (excluded[i]) continue;
    bool dominated = false;
    for (size_t j = 0; j < data.size() && !dominated; ++j) {
      if (j == i || excluded[j]) continue;
      dominated = Dominates(data.Get(static_cast<RecordId>(j)),
                            data.Get(static_cast<RecordId>(i)));
    }
    if (!dominated) out.push_back(static_cast<RecordId>(i));
  }
  return out;
}

TEST(DominanceTest, Basics) {
  EXPECT_TRUE(Dominates(Vec{0.5, 0.5}, Vec{0.5, 0.4}));
  EXPECT_TRUE(Dominates(Vec{0.6, 0.5}, Vec{0.5, 0.4}));
  EXPECT_FALSE(Dominates(Vec{0.5, 0.5}, Vec{0.5, 0.5}));  // equal
  EXPECT_FALSE(Dominates(Vec{0.6, 0.3}, Vec{0.5, 0.4}));  // incomparable
  EXPECT_FALSE(Dominates(Vec{0.4, 0.4}, Vec{0.5, 0.5}));
}

TEST(SkylineSetTest, InsertEvictsDominated) {
  Dataset data = Dataset::FromRows(
      {{0.2, 0.8}, {0.8, 0.2}, {0.5, 0.5}, {0.9, 0.9}, {0.1, 0.1}});
  SkylineSet sl(&data);
  EXPECT_TRUE(sl.Insert(0));
  EXPECT_TRUE(sl.Insert(1));
  EXPECT_TRUE(sl.Insert(2));
  EXPECT_EQ(sl.size(), 3u);
  EXPECT_TRUE(sl.Insert(3));  // dominates everything
  EXPECT_EQ(sl.size(), 1u);
  EXPECT_FALSE(sl.Insert(4));  // dominated
  EXPECT_EQ(sl.members(), (std::vector<RecordId>{3}));
}

TEST(SkylineSetTest, DominatedByMember) {
  Dataset data = Dataset::FromRows({{0.7, 0.7}});
  SkylineSet sl(&data);
  sl.Insert(0);
  EXPECT_TRUE(sl.DominatedByMember(Vec{0.5, 0.5}));
  EXPECT_FALSE(sl.DominatedByMember(Vec{0.8, 0.5}));
  EXPECT_FALSE(sl.DominatedByMember(Vec{0.7, 0.7}));  // equal, not dominated
}

TEST(ComputeSkylineTest, MatchesBruteForce) {
  Rng rng(31);
  Dataset data = GenerateAnticorrelated(800, 3, rng);
  std::vector<RecordId> all(data.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<RecordId>(i);
  std::vector<RecordId> got = ComputeSkyline(data, all);
  std::sort(got.begin(), got.end());
  std::vector<RecordId> want = BruteSkylineExcluding(data, {});
  EXPECT_EQ(got, want);
}

struct BbsCase {
  const char* dataset;
  int dim;
  int k;
};

class BbsTest : public ::testing::TestWithParam<BbsCase> {};

TEST_P(BbsTest, ContinuationMatchesBruteForce) {
  const BbsCase& c = GetParam();
  Rng rng(71);
  Result<Dataset> data = GenerateByName(c.dataset, 1500, c.dim, rng);
  ASSERT_TRUE(data.ok());
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&*data, &disk);
  LinearScoring scoring(c.dim);
  for (int trial = 0; trial < 3; ++trial) {
    Vec w(c.dim);
    for (int j = 0; j < c.dim; ++j) w[j] = rng.Uniform(0.1, 1.0);
    Result<TopKResult> brs = RunBrs(tree, scoring, w, c.k);
    ASSERT_TRUE(brs.ok());
    SkylineResult sl = ContinueSkylineFromBrs(tree, scoring, w, *brs);
    std::vector<RecordId> want = BruteSkylineExcluding(*data, brs->result);
    EXPECT_EQ(sl.skyline, want)
        << c.dataset << " d=" << c.dim << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BbsTest,
    ::testing::Values(BbsCase{"IND", 2, 5}, BbsCase{"IND", 4, 20},
                      BbsCase{"COR", 3, 10}, BbsCase{"ANTI", 3, 10},
                      BbsCase{"ANTI", 5, 20}));

TEST(BbsTest, PrunesIo) {
  // On correlated data the skyline is tiny and BBS should read only a
  // small fraction of the tree.
  Rng rng(55);
  Dataset data = GenerateCorrelated(20000, 3, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  LinearScoring scoring(3);
  Vec w = {0.5, 0.6, 0.7};
  Result<TopKResult> brs = RunBrs(tree, scoring, w, 10);
  ASSERT_TRUE(brs.ok());
  disk.ResetStats();
  SkylineResult sl = ContinueSkylineFromBrs(tree, scoring, w, *brs);
  EXPECT_EQ(sl.io.reads, disk.stats().reads);
  EXPECT_LT(sl.io.reads, tree.node_count() / 2);
  EXPECT_FALSE(sl.skyline.empty());
}

}  // namespace
}  // namespace gir
