// Admission/batch-former contract: cosine archetype clustering orders
// batches cluster-major and picks the adaptive width, shedding is
// always an explicit ResourceExhausted (capacity at Submit, expiry at
// Form), the firing policy respects max_wait/max_batch — and the queue
// is safe under concurrent producers with a consumer (the TSan CI job
// hammers this test).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serve/admission.h"

namespace gir::serve {
namespace {

Vec Archetype(double a, double b, double c) { return Vec{a, b, c}; }

ServiceRequest Req(uint64_t id, Vec w, double enqueue_ms) {
  ServiceRequest r;
  r.id = id;
  r.weights = std::move(w);
  r.k = 10;
  r.enqueue_ms = enqueue_ms;
  r.deadline_ms = enqueue_ms + 100.0;
  return r;
}

TEST(ClusterForExecutionTest, GroupsByArchetypeAndPicksWidth) {
  AdmissionOptions opt;
  opt.cluster_cos = 0.999;
  // Two archetypes (4 and 2 members, scaled copies cluster together)
  // plus two stragglers.
  std::vector<ServiceRequest> reqs;
  reqs.push_back(Req(0, Archetype(0.9, 0.1, 0.1), 0.0));
  reqs.push_back(Req(1, Archetype(0.1, 0.9, 0.1), 1.0));
  reqs.push_back(Req(2, Archetype(0.45, 0.05, 0.05), 2.0));  // = 0 scaled
  reqs.push_back(Req(3, Archetype(0.3, 0.3, 0.9), 3.0));     // straggler
  reqs.push_back(Req(4, Archetype(0.9, 0.1, 0.1), 4.0));
  reqs.push_back(Req(5, Archetype(0.05, 0.45, 0.05), 5.0));  // = 1 scaled
  reqs.push_back(Req(6, Archetype(0.9, 0.1, 0.1), 6.0));
  reqs.push_back(Req(7, Archetype(0.9, 0.3, 0.7), 7.0));     // straggler

  FormedBatch fb = ClusterForExecution(std::move(reqs), opt, 10.0);
  ASSERT_EQ(fb.requests.size(), 8u);
  ASSERT_EQ(fb.group_of.size(), 8u);
  EXPECT_EQ(fb.clusters, 2u);
  EXPECT_EQ(fb.stragglers, 2u);
  EXPECT_EQ(fb.width, 4u);  // largest cluster

  // Cluster-major order: the size-4 cluster first (ids 0,2,4,6 in
  // arrival order), then the size-2 cluster (1,5), stragglers last.
  std::vector<uint64_t> ids;
  for (const ServiceRequest& r : fb.requests) ids.push_back(r.id);
  EXPECT_EQ(ids, (std::vector<uint64_t>{0, 2, 4, 6, 1, 5, 3, 7}));
  // Labels are contiguous runs (what BatchExecHints::group_of wants).
  EXPECT_EQ(fb.group_of[0], fb.group_of[1]);
  EXPECT_EQ(fb.group_of[0], fb.group_of[3]);
  EXPECT_EQ(fb.group_of[4], fb.group_of[5]);
  EXPECT_NE(fb.group_of[0], fb.group_of[4]);
  EXPECT_NE(fb.group_of[5], fb.group_of[6]);
  EXPECT_NE(fb.group_of[6], fb.group_of[7]);
}

TEST(ClusterForExecutionTest, AllStragglersFallBackToFanOutWidth) {
  AdmissionOptions opt;
  opt.cluster_cos = 0.99999;
  std::vector<ServiceRequest> reqs;
  reqs.push_back(Req(0, Archetype(0.9, 0.1, 0.1), 0.0));
  reqs.push_back(Req(1, Archetype(0.1, 0.9, 0.1), 1.0));
  reqs.push_back(Req(2, Archetype(0.1, 0.1, 0.9), 2.0));
  FormedBatch fb = ClusterForExecution(std::move(reqs), opt, 3.0);
  EXPECT_EQ(fb.clusters, 0u);
  EXPECT_EQ(fb.stragglers, 3u);
  EXPECT_EQ(fb.width, 1u);  // per-query traversal = fan-out fallback
}

TEST(ClusterForExecutionTest, WidthIsCappedAtMaxWidth) {
  AdmissionOptions opt;
  opt.cluster_cos = 0.9;
  opt.max_width = 4;
  std::vector<ServiceRequest> reqs;
  for (uint64_t i = 0; i < 16; ++i) {
    reqs.push_back(Req(i, Archetype(0.9, 0.1, 0.1), static_cast<double>(i)));
  }
  FormedBatch fb = ClusterForExecution(std::move(reqs), opt, 20.0);
  EXPECT_EQ(fb.width, 4u);
}

TEST(AdmissionQueueTest, FiringPolicyMaxWaitAndMaxBatch) {
  AdmissionOptions opt;
  opt.max_batch = 3;
  opt.max_wait_ms = 5.0;
  AdmissionQueue q(opt);
  EXPECT_LT(q.NextFireTime(), 0.0);
  EXPECT_FALSE(q.ShouldForm(100.0));

  ASSERT_TRUE(q.Submit(0, Archetype(0.5, 0.5, 0.5), 10, 1.0).ok());
  EXPECT_EQ(q.NextFireTime(), 6.0);  // oldest + max_wait
  EXPECT_FALSE(q.ShouldForm(5.9));
  EXPECT_TRUE(q.ShouldForm(6.0));

  ASSERT_TRUE(q.Submit(1, Archetype(0.5, 0.5, 0.5), 10, 2.0).ok());
  ASSERT_TRUE(q.Submit(2, Archetype(0.5, 0.5, 0.5), 10, 3.0).ok());
  EXPECT_TRUE(q.ShouldForm(3.0));  // full batch fires immediately
  EXPECT_EQ(q.NextFireTime(), 1.0);

  std::vector<ShedRequest> shed;
  FormedBatch fb = q.Form(3.0, &shed);
  EXPECT_EQ(fb.requests.size(), 3u);
  EXPECT_TRUE(shed.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(AdmissionQueueTest, ShedsExplicitlyOnCapacityAndExpiry) {
  AdmissionOptions opt;
  opt.queue_capacity = 2;
  opt.deadline_ms = 10.0;
  opt.max_batch = 8;
  AdmissionQueue q(opt);
  ASSERT_TRUE(q.Submit(0, Archetype(0.5, 0.5, 0.5), 10, 0.0).ok());
  ASSERT_TRUE(q.Submit(1, Archetype(0.5, 0.5, 0.5), 10, 1.0).ok());
  Status overflow = q.Submit(2, Archetype(0.5, 0.5, 0.5), 10, 2.0);
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(q.Submit(3, Vec{}, 10, 2.0).ok());  // malformed

  // Request 0 (deadline 10.0) expires by t=15; request 1 (deadline
  // 11.0) expires too. Both must come back as explicit sheds.
  std::vector<ShedRequest> shed;
  FormedBatch fb = q.Form(15.0, &shed);
  EXPECT_TRUE(fb.requests.empty());
  ASSERT_EQ(shed.size(), 2u);
  for (const ShedRequest& s : shed) {
    EXPECT_EQ(s.status.code(), StatusCode::kResourceExhausted);
  }
}

// Concurrency hammer (the TSan target): producers race Submit against
// a consumer forming batches; every submitted id must come out exactly
// once, either admitted or shed — conservation, no duplicates, no
// losses.
TEST(AdmissionQueueTest, ConcurrentProducersConserveRequests) {
  AdmissionOptions opt;
  opt.max_batch = 16;
  opt.max_wait_ms = 0.0;  // always ripe
  opt.queue_capacity = 64;
  opt.deadline_ms = 1e9;
  AdmissionQueue q(opt);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(p + 1);
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t id =
            static_cast<uint64_t>(p) * kPerProducer + static_cast<uint64_t>(i);
        Vec w{rng.Uniform(0.05, 1.0), rng.Uniform(0.05, 1.0),
              rng.Uniform(0.05, 1.0)};
        Status st = q.Submit(id, std::move(w), 10, static_cast<double>(i));
        if (st.ok()) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  std::set<uint64_t> drained;
  std::thread consumer([&] {
    std::vector<ShedRequest> shed;
    while (!done.load() || q.size() > 0) {
      FormedBatch fb = q.Form(0.0, &shed);
      for (const ServiceRequest& r : fb.requests) {
        EXPECT_TRUE(drained.insert(r.id).second) << "duplicate id " << r.id;
      }
      if (fb.requests.empty()) std::this_thread::yield();
    }
    for (const ShedRequest& s : shed) {
      EXPECT_TRUE(drained.insert(s.request.id).second);
    }
  });
  for (std::thread& t : producers) t.join();
  done.store(true);
  consumer.join();
  EXPECT_EQ(static_cast<int>(drained.size()), accepted.load());
  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
}

TEST(AdmissionQueueTest, ShutdownDrainsPendingWithUnavailable) {
  AdmissionOptions opt;
  opt.max_batch = 8;
  AdmissionQueue q(opt);
  ASSERT_TRUE(q.Submit(0, Archetype(0.5, 0.5, 0.5), 10, 0.0).ok());
  ASSERT_TRUE(q.Submit(1, Archetype(0.5, 0.5, 0.5), 10, 1.0).ok());
  EXPECT_FALSE(q.shut_down());

  std::vector<ShedRequest> drained = q.Shutdown();
  EXPECT_TRUE(q.shut_down());
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].request.id, 0u);
  EXPECT_EQ(drained[1].request.id, 1u);
  for (const ShedRequest& s : drained) {
    EXPECT_EQ(s.status.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(q.size(), 0u);

  // Submitted-after-shutdown requests are refused before any capacity
  // check — the queue is gone, not full.
  Status late = q.Submit(2, Archetype(0.5, 0.5, 0.5), 10, 2.0);
  EXPECT_EQ(late.code(), StatusCode::kUnavailable);
  // And a post-shutdown Form finds nothing to batch or shed.
  std::vector<ShedRequest> shed;
  FormedBatch fb = q.Form(3.0, &shed);
  EXPECT_TRUE(fb.requests.empty());
  EXPECT_TRUE(shed.empty());
  // Idempotent: a second Shutdown has nothing left to drain.
  EXPECT_TRUE(q.Shutdown().empty());
}

// Shutdown hammer (the TSan target): producers race Submit against one
// Shutdown; afterwards every accepted request must have been handed to
// exactly one side — a formed batch before the shutdown or the drained
// list — and every post-shutdown Submit must have been refused.
TEST(AdmissionQueueTest, ConcurrentShutdownConservesRequests) {
  AdmissionOptions opt;
  opt.max_batch = 16;
  opt.max_wait_ms = 0.0;
  opt.queue_capacity = 1 << 20;  // capacity out of the picture
  opt.deadline_ms = 1e9;
  AdmissionQueue q(opt);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 400;
  std::atomic<int> accepted{0};
  std::atomic<int> refused{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(p + 11);
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t id =
            static_cast<uint64_t>(p) * kPerProducer + static_cast<uint64_t>(i);
        Vec w{rng.Uniform(0.05, 1.0), rng.Uniform(0.05, 1.0),
              rng.Uniform(0.05, 1.0)};
        Status st = q.Submit(id, std::move(w), 10, static_cast<double>(i));
        if (st.ok()) {
          accepted.fetch_add(1);
        } else {
          EXPECT_EQ(st.code(), StatusCode::kUnavailable);
          refused.fetch_add(1);
        }
      }
    });
  }

  std::set<uint64_t> seen;
  size_t formed = 0;
  std::vector<ShedRequest> shed;
  // Let the producers get going, then shut down mid-stream and keep
  // forming until the pre-shutdown backlog would have drained (it
  // cannot: Shutdown drained it atomically).
  for (int spin = 0; spin < 50; ++spin) {
    FormedBatch fb = q.Form(0.0, &shed);
    for (const ServiceRequest& r : fb.requests) {
      EXPECT_TRUE(seen.insert(r.id).second) << "duplicate id " << r.id;
      ++formed;
    }
    std::this_thread::yield();
  }
  std::vector<ShedRequest> drained = q.Shutdown();
  for (std::thread& t : producers) t.join();
  for (const ShedRequest& s : drained) {
    EXPECT_EQ(s.status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(seen.insert(s.request.id).second);
  }
  for (const ShedRequest& s : shed) {
    EXPECT_TRUE(seen.insert(s.request.id).second);
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(static_cast<int>(seen.size()), accepted.load());
  EXPECT_EQ(accepted.load() + refused.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace gir::serve
