// Approximate GIR for general (non-sum-decomposable) scoring functions
// (§7.2): validated against the exact machinery on linear scoring, and
// against brute-force oracles on the genuinely non-convex Min scoring.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/approx.h"
#include "gir/engine.h"
#include "gir/sensitivity.h"

namespace gir {
namespace {

std::vector<RecordId> ScanTopKGeneral(const Dataset& data,
                                      const GeneralScoringFunction& fn,
                                      VecView q, size_t k) {
  std::vector<RecordId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](RecordId a, RecordId b) {
    return fn.Score(data.Get(a), q) > fn.Score(data.Get(b), q);
  });
  ids.resize(k);
  return ids;
}

TEST(MinScoringTest, ScoreIsWorstDimension) {
  MinScoring fn(3);
  EXPECT_DOUBLE_EQ(fn.Score(Vec{0.5, 0.9, 0.8}, Vec{1.0, 0.5, 0.25}),
                   0.2);  // min(0.5, 0.45, 0.2)
  Mbb box{{0.2, 0.2, 0.2}, {0.9, 0.8, 0.8}};
  EXPECT_DOUBLE_EQ(fn.MaxScore(box, Vec{1.0, 1.0, 1.0}), 0.8);
}

TEST(GeneralTopKTest, MatchesLinearScanForMinScoring) {
  Rng rng(41);
  Dataset data = GenerateIndependent(3000, 3, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  MinScoring fn(3);
  for (int trial = 0; trial < 5; ++trial) {
    Vec q = {rng.Uniform(0.2, 1.0), rng.Uniform(0.2, 1.0),
             rng.Uniform(0.2, 1.0)};
    Result<std::vector<RecordId>> got = GeneralTopK(tree, fn, q, 10);
    ASSERT_TRUE(got.ok());
    std::vector<RecordId> want = ScanTopKGeneral(data, fn, q, 10);
    ASSERT_EQ(got->size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR(fn.Score(data.Get((*got)[i]), q),
                  fn.Score(data.Get(want[i]), q), 1e-12);
    }
  }
}

TEST(GeneralTopKTest, AdapterMatchesBrs) {
  Rng rng(42);
  Dataset data = GenerateIndependent(2000, 4, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  GeneralFromDecomposable fn(MakeScoring("Linear", 4));
  LinearScoring linear(4);
  Vec q = {0.4, 0.7, 0.5, 0.9};
  Result<std::vector<RecordId>> a = GeneralTopK(tree, fn, q, 15);
  Result<TopKResult> b = RunBrs(tree, linear, q, 15);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, b->result);
}

TEST(ApproxGirTest, AgreesWithExactGirOnLinearScoring) {
  Rng rng(43);
  Dataset data = GenerateIndependent(1500, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  Vec q = {0.5, 0.6, 0.7};
  const size_t k = 8;
  Result<GirComputation> exact = engine->ComputeGir(q, k, Phase2Method::kFP);
  ASSERT_TRUE(exact.ok());

  GeneralFromDecomposable fn(MakeScoring("Linear", 3));
  ApproxGirOptions opt;
  opt.rays = 40;
  opt.probability_samples = 500;
  Result<ApproxGir> approx =
      ApproxGir::Compute(engine->tree(), fn, q, k, opt);
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(approx->result(), exact->topk.result);

  // Boundary points found by bisection lie inside the exact GIR (they
  // are the last preserved point on each ray), within bisection slack.
  for (const Vec& b : approx->boundary_points()) {
    EXPECT_TRUE(exact->region.Contains(b, 1e-4));
  }
  // The approximate minimum boundary distance matches the exact STB
  // radius: both are the distance from q to the nearest region facet
  // (ray sampling overestimates slightly; bisection underestimates).
  double stb = StbRadius(exact->region);
  EXPECT_GE(approx->min_boundary_distance(), stb - 1e-3);
  EXPECT_LE(approx->min_boundary_distance(), 6.0 * stb + 0.05);
  // Preserved probability tracks the exact volume ratio.
  double ratio = exact->region.polytope().Volume();
  EXPECT_NEAR(approx->preserved_probability(), ratio,
              0.05 + 3.0 * std::sqrt(ratio * (1 - ratio) / 500));
}

TEST(ApproxGirTest, OracleSemanticsForMinScoring) {
  Rng rng(44);
  Dataset data = GenerateIndependent(800, 3, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  MinScoring fn(3);
  Vec q = {0.6, 0.5, 0.8};
  ApproxGirOptions opt;
  opt.rays = 24;
  opt.probability_samples = 100;
  Result<ApproxGir> approx = ApproxGir::Compute(tree, fn, q, 6, opt);
  ASSERT_TRUE(approx.ok());
  // The oracle agrees with a brute-force recomputation everywhere.
  for (int probe = 0; probe < 30; ++probe) {
    Vec p = {rng.Uniform(0.05, 1.0), rng.Uniform(0.05, 1.0),
             rng.Uniform(0.05, 1.0)};
    bool preserved = approx->PreservedAt(p);
    EXPECT_EQ(preserved,
              ScanTopKGeneral(data, fn, p, 6) == approx->result());
  }
  // Every reported boundary point preserves the result; nudging it
  // outward along its ray by the bisection slack flips it (unless the
  // boundary was the cube wall).
  EXPECT_FALSE(approx->boundary_points().empty());
  EXPECT_GT(approx->min_boundary_distance(), 0.0);
  EXPECT_GE(approx->mean_boundary_distance(),
            approx->min_boundary_distance());
  for (const Vec& b : approx->boundary_points()) {
    EXPECT_TRUE(approx->PreservedAt(b));
  }
}

TEST(ApproxGirTest, ScaleInvarianceOfMinScoringRegion) {
  // Min scoring is positively homogeneous in q, so preservation is
  // invariant along rays through the origin — the immutable region is
  // a cone, just like the linear case. Check it via the oracle.
  Rng rng(45);
  Dataset data = GenerateIndependent(600, 2, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  MinScoring fn(2);
  Vec q = {0.8, 0.5};
  Result<ApproxGir> approx = ApproxGir::Compute(tree, fn, q, 5);
  ASSERT_TRUE(approx.ok());
  for (double scale : {0.3, 0.6, 1.2}) {
    Vec q2 = Scale(q, scale);
    if (q2[0] <= 1.0 && q2[1] <= 1.0) {
      EXPECT_TRUE(approx->PreservedAt(q2)) << "scale " << scale;
    }
  }
}

TEST(ApproxGirTest, RejectsDimensionMismatch) {
  Rng rng(46);
  Dataset data = GenerateIndependent(100, 3, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  MinScoring fn(3);
  EXPECT_FALSE(ApproxGir::Compute(tree, fn, Vec{0.5, 0.5}, 5).ok());
}

}  // namespace
}  // namespace gir
