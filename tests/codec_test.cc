#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dataset/generators.h"
#include "index/rtree_codec.h"
#include "topk/brs.h"

namespace gir {
namespace {

TEST(NodeCodecTest, RoundTripLeaf) {
  RTreeNode node;
  node.is_leaf = true;
  node.level = 0;
  for (int i = 0; i < 5; ++i) {
    RTreeEntry e;
    e.child = 100 + i;
    e.mbb = Mbb::OfPoint(Vec{0.1 * i, 1.0 - 0.1 * i});
    node.entries.push_back(std::move(e));
  }
  Result<std::vector<uint8_t>> page = EncodeNode(node, 2, 4096);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->size(), 4096u);
  Result<RTreeNode> back = DecodeNode(*page, 2);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->is_leaf);
  EXPECT_EQ(back->level, 0);
  ASSERT_EQ(back->entries.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(back->entries[i].child, 100 + i);
    EXPECT_EQ(back->entries[i].mbb.lo, node.entries[i].mbb.lo);
    EXPECT_EQ(back->entries[i].mbb.hi, node.entries[i].mbb.hi);
  }
}

TEST(NodeCodecTest, RoundTripInternal) {
  RTreeNode node;
  node.is_leaf = false;
  node.level = 3;
  RTreeEntry e;
  e.child = 7;
  e.mbb = Mbb{{0.25, 0.5, 0.125}, {0.75, 1.0, 0.625}};
  node.entries.push_back(e);
  Result<std::vector<uint8_t>> page = EncodeNode(node, 3, 4096);
  ASSERT_TRUE(page.ok());
  Result<RTreeNode> back = DecodeNode(*page, 3);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->is_leaf);
  EXPECT_EQ(back->level, 3);
  EXPECT_EQ(back->entries[0].mbb.lo, e.mbb.lo);
}

TEST(NodeCodecTest, RejectsOversizedNode) {
  RTreeNode node;
  node.is_leaf = true;
  for (int i = 0; i < 100; ++i) {
    RTreeEntry e;
    e.child = i;
    e.mbb = Mbb::OfPoint(Vec{0.0, 0.0, 0.0, 0.0});
    node.entries.push_back(std::move(e));
  }
  // 100 entries * 68B > 512B page.
  EXPECT_FALSE(EncodeNode(node, 4, 512).ok());
}

TEST(NodeCodecTest, RejectsCorruptEntryCount) {
  RTreeNode node;
  node.is_leaf = true;
  Result<std::vector<uint8_t>> page = EncodeNode(node, 2, 256);
  ASSERT_TRUE(page.ok());
  // Forge a huge entry count.
  (*page)[4] = 0xFF;
  (*page)[5] = 0xFF;
  EXPECT_FALSE(DecodeNode(*page, 2).ok());
}

TEST(ImageCodecTest, FullTreeRoundTrip) {
  Rng rng(5);
  Dataset data = GenerateIndependent(5000, 3, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  Result<std::vector<uint8_t>> image = SaveRTreeImage(tree);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->size(), 32 + tree.node_count() * 4096);

  DiskManager disk2;
  Result<RTree> loaded = LoadRTreeImage(&data, &disk2, *image);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), tree.size());
  EXPECT_EQ(loaded->node_count(), tree.node_count());
  EXPECT_EQ(loaded->root(), tree.root());
  ASSERT_TRUE(loaded->Validate().ok()) << loaded->Validate().ToString();

  // Queries on the restored tree match the original.
  LinearScoring scoring(3);
  for (int trial = 0; trial < 5; ++trial) {
    Vec w = {rng.Uniform(0.1, 1.0), rng.Uniform(0.1, 1.0),
             rng.Uniform(0.1, 1.0)};
    Result<TopKResult> a = RunBrs(tree, scoring, w, 10);
    Result<TopKResult> b = RunBrs(*loaded, scoring, w, 10);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->result, b->result);
    EXPECT_EQ(a->io.reads, b->io.reads);  // identical page access paths
  }
}

TEST(ImageCodecTest, RejectsBadMagic) {
  Rng rng(6);
  Dataset data = GenerateIndependent(100, 2, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  Result<std::vector<uint8_t>> image = SaveRTreeImage(tree);
  ASSERT_TRUE(image.ok());
  (*image)[0] ^= 0xFF;
  DiskManager disk2;
  EXPECT_FALSE(LoadRTreeImage(&data, &disk2, *image).ok());
}

TEST(ImageCodecTest, RejectsDimMismatch) {
  Rng rng(7);
  Dataset data = GenerateIndependent(100, 2, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  Result<std::vector<uint8_t>> image = SaveRTreeImage(tree);
  ASSERT_TRUE(image.ok());
  Dataset other(3);
  DiskManager disk2;
  EXPECT_FALSE(LoadRTreeImage(&other, &disk2, *image).ok());
}

TEST(ImageCodecTest, RejectsTruncatedImage) {
  Rng rng(8);
  Dataset data = GenerateIndependent(500, 2, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  Result<std::vector<uint8_t>> image = SaveRTreeImage(tree);
  ASSERT_TRUE(image.ok());
  image->resize(image->size() - 4096);
  DiskManager disk2;
  EXPECT_FALSE(LoadRTreeImage(&data, &disk2, *image).ok());
}

TEST(ImageCodecTest, EveryNodeOfLargeTreeFitsItsPage) {
  // The page-budget invariant that the capacity formula promises.
  Rng rng(9);
  for (int d : {2, 4, 6, 8}) {
    Dataset data = GenerateIndependent(3000, d, rng);
    DiskManager disk;
    RTree tree = RTree::BulkLoad(&data, &disk);
    for (size_t n = 0; n < tree.node_count(); ++n) {
      EXPECT_TRUE(
          EncodeNode(tree.PeekNode(static_cast<PageId>(n)), d, 4096).ok())
          << "d=" << d << " node " << n;
    }
  }
}

}  // namespace
}  // namespace gir
