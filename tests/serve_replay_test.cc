// Trace-replay determinism: replaying a generated trace through the
// serving front door (admission queue -> adaptive clustering ->
// ComputeBatch with hints, update events as barriers) must produce
// per-request top-k results bit-identical to running the same event
// sequence directly against GirEngine::ComputeGir in arrival order —
// across forced SIMD tiers, and independent of adaptive vs static
// width. Plus the no-silent-drop contract: under overload every query
// still gets exactly one outcome, shed ones carrying an explicit
// ResourceExhausted.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "dataset/generators.h"
#include "gir/batch_engine.h"
#include "gir/engine.h"
#include "serve/replay.h"
#include "storage/disk_manager.h"
#include "topk/scoring.h"

namespace gir::serve {
namespace {

constexpr uint64_t kDataSeed = 404;

class TierGuard {
 public:
  TierGuard() : saved_(simd::ActiveTier()) {}
  ~TierGuard() { simd::ForceTier(saved_); }

 private:
  simd::Tier saved_;
};

TrafficConfig MixedTrace() {
  TrafficConfig c;
  c.seed = 2014;
  c.dim = 3;
  c.k = 8;
  c.events = 160;
  c.base_qps = 3000.0;
  c.key_pool = 12;
  c.zipf_s = 1.1;
  c.jitter_prob = 0.25;  // some personalized weights among the repeats
  c.update_ratio = 0.15;
  c.updates_per_batch = 4;
  c.delete_fraction = 0.5;
  c.initial_records = 300;
  return c;
}

Dataset FreshData(const TrafficConfig& c) {
  Rng rng(kDataSeed);
  Result<Dataset> d = GenerateByName("IND", c.initial_records, c.dim, rng);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

// The ground truth the front door must reproduce: the same events, in
// arrival order, as plain sequential ComputeGir / ApplyUpdates calls.
std::vector<std::vector<RecordId>> DirectReference(const Trace& trace) {
  Dataset data = FreshData(trace.config);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", trace.config.dim)));
  std::vector<std::vector<RecordId>> topk;
  for (const TraceEvent& ev : trace.events) {
    if (ev.kind == TraceEventKind::kUpdate) {
      Result<UpdateStats> up = engine->ApplyUpdates(ev.update);
      EXPECT_TRUE(up.ok()) << up.status().ToString();
      continue;
    }
    Result<GirComputation> gir =
        engine->ComputeGir(ev.weights, ev.k, Phase2Method::kFP);
    EXPECT_TRUE(gir.ok()) << gir.status().ToString();
    topk.push_back(gir.ok() ? gir->topk.result : std::vector<RecordId>{});
  }
  return topk;
}

// Shed-free replay of `trace` on a fresh engine: huge deadlines, no
// dispatch shedding, so batching/grouping is the only variable.
Result<ServiceReport> ShedFreeReplay(const Trace& trace, Dataset* data,
                                     bool adaptive, size_t static_width) {
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(data, &disk, MakeScoring("Linear", trace.config.dim)));
  BatchOptions opts;
  opts.threads = 2;
  opts.cache_capacity = 0;  // probe-order independence is cache_test's job
  opts.exec.shared_traversal = true;
  BatchEngine batch(engine.get(), opts);
  ReplayOptions ro;
  ro.admission.max_batch = 16;
  ro.admission.max_wait_ms = 2.0;
  ro.admission.deadline_ms = 1e12;
  ro.admission.queue_capacity = 1 << 20;
  ro.admission.max_width = 8;
  ro.adaptive_width = adaptive;
  ro.static_width = static_width;
  ro.shed_on_dispatch = false;
  return ReplayTrace(trace, &batch, ro);
}

// The tentpole property of this PR.
TEST(ServeReplayTest, ReplayMatchesDirectComputeBitwiseAcrossTiers) {
  TierGuard guard;
  Result<Trace> trace = GenerateTrace(MixedTrace());
  ASSERT_TRUE(trace.ok());
  ASSERT_GT(trace->updates, 0u);  // barriers actually exercised

  ASSERT_EQ(simd::ForceTier(simd::Tier::kScalar), simd::Tier::kScalar);
  const std::vector<std::vector<RecordId>> want = DirectReference(*trace);
  ASSERT_EQ(want.size(), trace->queries);

  for (simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::ForceTier(tier) != tier) continue;  // unsupported CPU
    SCOPED_TRACE(simd::TierName(tier));
    Dataset data = FreshData(trace->config);
    Result<ServiceReport> report = ShedFreeReplay(*trace, &data, true, 0);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_EQ(report->outcomes.size(), trace->queries);
    EXPECT_EQ(report->metrics.shed, 0u);
    EXPECT_EQ(report->metrics.failed, 0u);
    for (size_t q = 0; q < want.size(); ++q) {
      const RequestOutcome& out = report->outcomes[q];
      ASSERT_TRUE(out.status.ok()) << "query " << q;
      EXPECT_EQ(out.topk, want[q]) << "query " << q;
    }
  }
}

// Adaptive width and any static width answer identically — the
// adaptive policy is purely a performance decision.
TEST(ServeReplayTest, AdaptiveAndStaticWidthAnswerIdentically) {
  Result<Trace> trace = GenerateTrace(MixedTrace());
  ASSERT_TRUE(trace.ok());
  Dataset data_a = FreshData(trace->config);
  Dataset data_b = FreshData(trace->config);
  Dataset data_c = FreshData(trace->config);
  Result<ServiceReport> adaptive = ShedFreeReplay(*trace, &data_a, true, 0);
  Result<ServiceReport> wide = ShedFreeReplay(*trace, &data_b, false, 64);
  Result<ServiceReport> narrow = ShedFreeReplay(*trace, &data_c, false, 1);
  ASSERT_TRUE(adaptive.ok() && wide.ok() && narrow.ok());
  ASSERT_EQ(adaptive->outcomes.size(), wide->outcomes.size());
  ASSERT_EQ(adaptive->outcomes.size(), narrow->outcomes.size());
  for (size_t q = 0; q < adaptive->outcomes.size(); ++q) {
    EXPECT_EQ(adaptive->outcomes[q].topk, wide->outcomes[q].topk) << q;
    EXPECT_EQ(adaptive->outcomes[q].topk, narrow->outcomes[q].topk) << q;
  }
  // Same engine-side charge regardless of grouping (the amortization
  // contract), and the adaptive run recorded plausible widths.
  EXPECT_EQ(adaptive->charged_reads, wide->charged_reads);
  EXPECT_EQ(adaptive->charged_reads, narrow->charged_reads);
  EXPECT_GT(adaptive->metrics.batches, 0u);
  EXPECT_GE(adaptive->metrics.mean_width, 1.0);
}

// Overload: the front door may shed, but never silently — every query
// ends served (with results) or explicitly ResourceExhausted, and the
// metrics ledger conserves requests.
TEST(ServeReplayTest, OverloadShedsExplicitlyAndConservesRequests) {
  TrafficConfig c = MixedTrace();
  c.events = 400;
  c.base_qps = 200000.0;  // far beyond one core's capacity
  c.update_ratio = 0.05;
  Result<Trace> trace = GenerateTrace(c);
  ASSERT_TRUE(trace.ok());

  Dataset data = FreshData(c);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", c.dim)));
  BatchOptions opts;
  opts.threads = 2;
  opts.cache_capacity = 0;
  opts.exec.shared_traversal = true;
  BatchEngine batch(engine.get(), opts);
  ReplayOptions ro;
  ro.admission.max_batch = 32;
  ro.admission.max_wait_ms = 0.5;
  ro.admission.deadline_ms = 4.0;  // tight SLA
  ro.admission.queue_capacity = 48;
  ro.shed_on_dispatch = true;
  Result<ServiceReport> report = ReplayTrace(*trace, &batch, ro);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->outcomes.size(), trace->queries);
  size_t served = 0, shed = 0;
  for (const RequestOutcome& out : report->outcomes) {
    if (out.status.ok()) {
      EXPECT_FALSE(out.topk.empty());
      EXPECT_FALSE(out.timing.shed);
      ++served;
    } else {
      EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted)
          << out.status.ToString();
      EXPECT_TRUE(out.timing.shed);
      EXPECT_TRUE(out.topk.empty());
      ++shed;
    }
  }
  EXPECT_EQ(served + shed, trace->queries);
  EXPECT_GT(shed, 0u);  // this rate must overwhelm the server
  EXPECT_GT(served, 0u);

  const ServiceMetrics& m = report->metrics;
  EXPECT_EQ(m.requests, trace->queries);
  EXPECT_EQ(m.served + m.shed + m.failed, m.requests);
  EXPECT_EQ(m.served, served);
  EXPECT_EQ(m.shed, shed);
  EXPECT_EQ(m.update_events, trace->updates);
  EXPECT_NEAR(m.ShedRate(),
              static_cast<double>(shed) / static_cast<double>(m.requests),
              1e-12);
  uint64_t histogram_total = 0;
  for (uint64_t b : m.occupancy_histogram) histogram_total += b;
  EXPECT_EQ(histogram_total, m.batches);
}

}  // namespace
}  // namespace gir::serve
