// Engine-level invariants: cost accounting, candidate-count orderings,
// option plumbing, edge cases (tiny datasets, duplicates, k = n, tiny
// pages that force deep trees and R* reinserts).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/engine.h"

namespace gir {
namespace {

TEST(EngineStatsTest, AccountingFieldsArePopulated) {
  Rng rng(1);
  Dataset data = GenerateIndependent(5000, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  Vec w = {0.5, 0.6, 0.7};
  Result<GirComputation> gir = engine->ComputeGir(w, 10, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());
  const GirStats& s = gir->stats;
  EXPECT_GE(s.topk_cpu_ms, 0.0);
  EXPECT_GT(s.topk_reads, 0u);
  EXPECT_GE(s.phase2_cpu_ms, 0.0);
  EXPECT_GE(s.intersect_cpu_ms, 0.0);
  EXPECT_GT(s.constraints, 0u);
  EXPECT_EQ(s.constraints, 10 - 1 + s.candidates);  // phase1 + phase2
  EXPECT_DOUBLE_EQ(s.GirCpuMillis(),
                   s.phase1_cpu_ms + s.phase2_cpu_ms + s.intersect_cpu_ms);
  EXPECT_DOUBLE_EQ(s.GirIoMillis(10.0), 10.0 * s.phase2_reads);
}

TEST(EngineStatsTest, CandidateOrderingAcrossMethods) {
  Rng rng(2);
  Dataset data = GenerateAnticorrelated(8000, 4, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 4)));
  Vec w = {0.6, 0.5, 0.7, 0.4};
  auto sp = engine->ComputeGir(w, 20, Phase2Method::kSP);
  auto cp = engine->ComputeGir(w, 20, Phase2Method::kCP);
  auto fp = engine->ComputeGir(w, 20, Phase2Method::kFP);
  auto bf = engine->ComputeGir(w, 20, Phase2Method::kBruteForce);
  ASSERT_TRUE(sp.ok() && cp.ok() && fp.ok() && bf.ok());
  // BF considers everything; SP ⊇ CP; FP's critical set is smallest.
  EXPECT_EQ(bf->stats.candidates, data.size() - 20);
  EXPECT_LE(cp->stats.candidates, sp->stats.candidates);
  EXPECT_LE(fp->stats.candidates, cp->stats.candidates);
  // SP/CP share the BBS pass, so identical Phase-2 reads; FP reads less.
  EXPECT_EQ(sp->stats.phase2_reads, cp->stats.phase2_reads);
  EXPECT_LE(fp->stats.phase2_reads, sp->stats.phase2_reads);
  // The brute-force scan touches every leaf page.
  size_t leaves = 0;
  for (size_t n = 0; n < engine->tree().node_count(); ++n) {
    if (engine->tree().PeekNode(static_cast<PageId>(n)).is_leaf) ++leaves;
  }
  EXPECT_EQ(bf->stats.phase2_reads, leaves);
}

TEST(EngineStatsTest, SkippingPolytopeSkipsIntersectTime) {
  Rng rng(3);
  Dataset data = GenerateIndependent(2000, 3, rng);
  DiskManager disk;
  GirEngineOptions opt;
  opt.materialize_polytope = false;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3), opt));
  Result<GirComputation> gir =
      engine->ComputeGir(Vec{0.5, 0.5, 0.5}, 5, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());
  EXPECT_DOUBLE_EQ(gir->stats.intersect_cpu_ms, 0.0);
}

TEST(EngineEdgeTest, KEqualsN) {
  Rng rng(4);
  Dataset data = GenerateIndependent(50, 2, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 2)));
  Result<GirComputation> gir =
      engine->ComputeGir(Vec{0.5, 0.5}, 50, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());
  EXPECT_EQ(gir->topk.result.size(), 50u);
  // No non-result records: the GIR is the Phase-1 cone only.
  EXPECT_EQ(gir->stats.candidates, 0u);
  EXPECT_EQ(gir->region.constraints().size(), 49u);
  EXPECT_TRUE(gir->region.Contains(Vec{0.5, 0.5}));
}

TEST(EngineEdgeTest, KEqualsOne) {
  Rng rng(5);
  Dataset data = GenerateIndependent(500, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  Result<GirComputation> gir =
      engine->ComputeGir(Vec{0.7, 0.4, 0.6}, 1, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());
  // No ordering constraints for k=1.
  for (const GirConstraint& c : gir->region.constraints()) {
    EXPECT_EQ(c.provenance.kind, ConstraintProvenance::Kind::kOvertake);
  }
}

TEST(EngineEdgeTest, DuplicateRecordsAreHandled) {
  // Exact duplicates produce score ties and zero-vector constraints;
  // the pipeline must not crash and the region must stay sane.
  Rng rng(6);
  std::vector<Vec> rows;
  for (int i = 0; i < 200; ++i) {
    Vec p = {rng.Uniform(), rng.Uniform()};
    rows.push_back(p);
    rows.push_back(p);  // duplicate every record
  }
  Dataset data = Dataset::FromRows(rows);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 2)));
  Result<GirComputation> gir =
      engine->ComputeGir(Vec{0.5, 0.5}, 10, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());
  // The duplicated k-th record means the "region" collapses to (at
  // most) the tie hyperplane — Contains(query) may legitimately sit on
  // the boundary. Just require no crash and a well-formed polytope
  // call.
  (void)gir->region.polytope();
}

TEST(EngineEdgeTest, TinyPagesForceDeepTreesAndReinserts) {
  // 256-byte pages => capacity ~6 at d=2: insertion exercises R* splits
  // and forced reinsertion heavily; the tree must stay valid and agree
  // with a bulk-loaded twin on queries.
  Rng rng(7);
  Dataset data = GenerateIndependent(2000, 2, rng);
  DiskManager disk_small(256);
  RTree tree(&data, &disk_small);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<RecordId>(i));
  }
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  EXPECT_GE(tree.height(), 4u);

  DiskManager disk_big;
  RTree bulk = RTree::BulkLoad(&data, &disk_big);
  LinearScoring scoring(2);
  for (int trial = 0; trial < 5; ++trial) {
    Vec w = {rng.Uniform(0.1, 1.0), rng.Uniform(0.1, 1.0)};
    Result<TopKResult> a = RunBrs(tree, scoring, w, 10);
    Result<TopKResult> b = RunBrs(bulk, scoring, w, 10);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->result, b->result);
  }
}

TEST(EngineEdgeTest, HigherDimensionSmoke) {
  // d = 7 end-to-end: the star machinery and intersection must cope.
  Rng rng(8);
  Dataset data = GenerateIndependent(1500, 7, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 7)));
  Vec w(7);
  for (int j = 0; j < 7; ++j) w[j] = rng.Uniform(0.3, 0.9);
  Result<GirComputation> gir = engine->ComputeGir(w, 5, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());
  EXPECT_TRUE(gir->region.Contains(w, 1e-10));
  Result<GirComputation> sp = engine->ComputeGir(w, 5, Phase2Method::kSP);
  ASSERT_TRUE(sp.ok());
  for (int probe = 0; probe < 100; ++probe) {
    Vec q(7);
    for (int j = 0; j < 7; ++j) q[j] = rng.Uniform();
    EXPECT_EQ(gir->region.Contains(q), sp->region.Contains(q));
  }
}

TEST(EngineEdgeTest, SameEngineServesManyQueries) {
  Rng rng(9);
  Dataset data = GenerateCorrelated(3000, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  for (int i = 0; i < 20; ++i) {
    Vec w = {rng.Uniform(0.1, 1.0), rng.Uniform(0.1, 1.0),
             rng.Uniform(0.1, 1.0)};
    Result<GirComputation> gir =
        engine->ComputeGir(w, 5, Phase2Method::kFP);
    ASSERT_TRUE(gir.ok()) << "query " << i;
    EXPECT_TRUE(gir->region.Contains(w, 1e-10));
  }
}

}  // namespace
}  // namespace gir
