#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace gir {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(10), 10u);
  }
}

TEST(StopwatchTest, Monotone) {
  Stopwatch sw;
  double t1 = sw.ElapsedMillis();
  double t2 = sw.ElapsedMillis();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0.0);
}

TEST(FlagsTest, ParsesAllKinds) {
  int64_t n = 0;
  double x = 0.0;
  std::string s;
  bool b = false;
  FlagSet flags;
  flags.AddInt("n", &n, "count");
  flags.AddDouble("x", &x, "ratio");
  flags.AddString("name", &s, "label");
  flags.AddBool("verbose", &b, "spam");
  const char* argv[] = {"prog", "--n=42",      "--x", "2.5",
                        "--name=hello", "--verbose"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
}

TEST(FlagsTest, NoPrefixDisablesBool) {
  bool b = true;
  FlagSet flags;
  flags.AddBool("cache", &b, "");
  const char* argv[] = {"prog", "--no-cache"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(b);
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagSet flags;
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, RejectsBadInt) {
  int64_t n = 0;
  FlagSet flags;
  flags.AddInt("n", &n, "");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

}  // namespace
}  // namespace gir
