// Dynamic-update subsystem tests: R*-tree deletion invariants, dataset
// tombstones, and the headline property — after any random IND/COR/ANTI
// stream of ApplyUpdates batches (inserts, deletes, mixed), every query
// against the updated engine is bit-identical to the same query against
// an engine rebuilt from scratch over the mutated dataset, and cached
// GIRs survive exactly when the incremental LP invalidation proves they
// must.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/batch_engine.h"
#include "gir/cache.h"
#include "gir/engine.h"
#include "gir/sharded_cache.h"
#include "index/rtree.h"
#include "index/rtree_codec.h"

namespace gir {
namespace {

Dataset MakeData(const std::string& dist, size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Result<Dataset> data = GenerateByName(dist, n, d, rng);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

Vec Query(Rng& rng, size_t d) {
  Vec w(d);
  for (size_t j = 0; j < d; ++j) w[j] = rng.Uniform(0.05, 1.0);
  return w;
}

Vec Point(Rng& rng, size_t d) {
  Vec p(d);
  for (size_t j = 0; j < d; ++j) p[j] = rng.Uniform();
  return p;
}

// Picks `count` distinct live ids.
std::vector<RecordId> PickLive(const Dataset& data, size_t count, Rng& rng) {
  std::vector<RecordId> live;
  for (size_t i = 0; i < data.size(); ++i) {
    if (data.IsLive(static_cast<RecordId>(i))) {
      live.push_back(static_cast<RecordId>(i));
    }
  }
  std::vector<RecordId> out;
  for (size_t c = 0; c < count && !live.empty(); ++c) {
    size_t at = static_cast<size_t>(rng.UniformInt(live.size()));
    out.push_back(live[at]);
    live.erase(live.begin() + at);
  }
  return out;
}

// ----- RTree::Delete invariants -----

TEST(RTreeDeleteTest, DeleteMaintainsInvariantsAndRangeQueries) {
  Dataset data = MakeData("IND", 600, 3, 91);
  DiskManager disk;
  RTree tree(&data, &disk);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<RecordId>(i));
  }
  ASSERT_TRUE(tree.Validate().ok());

  Rng rng(17);
  std::set<RecordId> live;
  for (size_t i = 0; i < data.size(); ++i) {
    live.insert(static_cast<RecordId>(i));
  }
  // Delete two thirds in random order, validating as we go.
  for (int round = 0; round < 400; ++round) {
    auto it = live.begin();
    std::advance(it, static_cast<long>(rng.UniformInt(live.size())));
    RecordId victim = *it;
    live.erase(it);
    ASSERT_TRUE(tree.Delete(victim));
    EXPECT_FALSE(tree.Delete(victim));  // second delete: not found
    ASSERT_EQ(tree.size(), live.size());
    Status st = tree.Validate();
    ASSERT_TRUE(st.ok()) << st.message() << " after deleting " << victim;
    if (round % 50 == 0) {
      Mbb box{{0.2, 0.2, 0.2}, {0.8, 0.8, 0.8}};
      std::vector<RecordId> got = tree.RangeQuery(box);
      std::sort(got.begin(), got.end());
      std::vector<RecordId> want;
      for (RecordId id : live) {
        if (box.ContainsPoint(data.Get(id))) want.push_back(id);
      }
      EXPECT_EQ(got, want);
    }
  }
  // Drain to empty, then rebuild by insertion: freed pages are reused,
  // so the arena must not have grown.
  const size_t nodes_before = tree.node_count();
  for (RecordId id : std::vector<RecordId>(live.begin(), live.end())) {
    ASSERT_TRUE(tree.Delete(id));
  }
  EXPECT_EQ(tree.size(), 0u);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<RecordId>(i));
  }
  ASSERT_TRUE(tree.Validate().ok());
  EXPECT_LE(tree.node_count(), nodes_before + 1);
}

// The page codec must round-trip post-Delete state: freed pages are
// recovered onto the free list of the loaded tree (no arena growth on
// further churn), and a fully-drained tree loads back as empty.
TEST(RTreeDeleteTest, CodecRoundTripsChurnedAndDrainedTrees) {
  Dataset data = MakeData("IND", 300, 3, 12);
  DiskManager disk;
  RTree tree(&data, &disk);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<RecordId>(i));
  }
  Rng rng(13);
  std::vector<RecordId> deleted = PickLive(data, 200, rng);
  for (RecordId id : deleted) ASSERT_TRUE(tree.Delete(id));
  ASSERT_TRUE(tree.Validate().ok());

  Result<std::vector<uint8_t>> image = SaveRTreeImage(tree);
  ASSERT_TRUE(image.ok());
  DiskManager disk2;
  Result<RTree> loaded = LoadRTreeImage(&data, &disk2, *image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_TRUE(loaded->Validate().ok());
  EXPECT_EQ(loaded->size(), tree.size());
  Mbb all{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  std::vector<RecordId> got = loaded->RangeQuery(all);
  std::vector<RecordId> want = tree.RangeQuery(all);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  // Churn on the restored tree reuses the recovered free pages instead
  // of growing the arena.
  const size_t nodes_before = loaded->node_count();
  for (RecordId id : deleted) loaded->Insert(id);
  ASSERT_TRUE(loaded->Validate().ok());
  EXPECT_LE(loaded->node_count(), nodes_before + 1);

  // Drain completely: the rootless image must load back.
  std::vector<RecordId> rest = tree.RangeQuery(all);
  for (RecordId id : rest) ASSERT_TRUE(tree.Delete(id));
  EXPECT_EQ(tree.size(), 0u);
  Result<std::vector<uint8_t>> empty_image = SaveRTreeImage(tree);
  ASSERT_TRUE(empty_image.ok());
  DiskManager disk3;
  Result<RTree> drained = LoadRTreeImage(&data, &disk3, *empty_image);
  ASSERT_TRUE(drained.ok()) << drained.status().message();
  EXPECT_EQ(drained->size(), 0u);
  // And it is usable again.
  drained->Insert(7);
  EXPECT_EQ(drained->size(), 1u);
  ASSERT_TRUE(drained->Validate().ok());
}

TEST(RTreeDeleteTest, BulkLoadSkipsTombstones) {
  Dataset data = MakeData("COR", 200, 2, 5);
  Rng rng(6);
  std::vector<RecordId> dead = PickLive(data, 40, rng);
  for (RecordId id : dead) data.MarkDeleted(id);
  EXPECT_EQ(data.live_size(), 160u);

  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  EXPECT_EQ(tree.size(), 160u);
  ASSERT_TRUE(tree.Validate().ok());
  Mbb all{{0.0, 0.0}, {1.0, 1.0}};
  std::vector<RecordId> got = tree.RangeQuery(all);
  for (RecordId id : got) EXPECT_TRUE(data.IsLive(id));
  EXPECT_EQ(got.size(), 160u);
}

TEST(DatasetTest, TombstonesKeepIdsStable) {
  Dataset data(2);
  data.Append(Vec{0.1, 0.2});
  data.Append(Vec{0.3, 0.4});
  data.MarkDeleted(0);
  EXPECT_FALSE(data.IsLive(0));
  EXPECT_TRUE(data.IsLive(1));
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.live_size(), 1u);
  // Tombstoned coordinates stay readable (provenance, invalidation).
  EXPECT_DOUBLE_EQ(data.Get(0)[1], 0.2);
  RecordId id = data.AppendRecord(Vec{0.5, 0.6});
  EXPECT_EQ(id, 2);
  EXPECT_TRUE(data.IsLive(2));
  EXPECT_EQ(data.live_size(), 2u);
  data.MarkDeleted(0);  // idempotent
  EXPECT_EQ(data.live_size(), 2u);
}

// ----- update-vs-rebuild property -----

struct StreamCase {
  const char* dist;
  int inserts;
  int deletes;
};

// After each ApplyUpdates batch the updated engine must agree with a
// from-scratch rebuild over the same (tombstoned) dataset: identical
// top-k ids, bitwise-identical scores, semantically identical regions,
// and sane IoStats. Tombstones keep record ids aligned between the two.
TEST(UpdateEngineTest, UpdatedEngineMatchesScratchRebuild) {
  const StreamCase cases[] = {
      {"IND", 12, 0},   // pure insert stream
      {"COR", 0, 12},   // pure delete stream
      {"ANTI", 8, 8},   // mixed
      {"IND", 6, 10},   // shrinking mixed
  };
  const size_t n = 220;
  const size_t d = 3;
  const size_t k = 8;
  uint64_t seed = 400;
  for (const StreamCase& c : cases) {
    SCOPED_TRACE(c.dist + std::string(" +") + std::to_string(c.inserts) +
                 " -" + std::to_string(c.deletes));
    Dataset data = MakeData(c.dist, n, d, ++seed);
    DiskManager disk;
    auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
    Rng rng(seed * 3);

    for (int batch_no = 0; batch_no < 3; ++batch_no) {
      UpdateBatch batch;
      for (int i = 0; i < c.inserts; ++i) {
        batch.inserts.push_back(Point(rng, d));
      }
      batch.deletes = PickLive(data, static_cast<size_t>(c.deletes), rng);
      Result<UpdateStats> applied = engine->ApplyUpdates(batch);
      ASSERT_TRUE(applied.ok()) << applied.status().message();
      EXPECT_EQ(applied->version, static_cast<uint64_t>(batch_no + 1));
      EXPECT_EQ(applied->applied_inserts, batch.inserts.size());
      EXPECT_EQ(applied->applied_deletes, batch.deletes.size());

      // From-scratch reference over the mutated dataset (same ids via
      // the shared tombstone layout).
      Dataset rebuilt = data;
      DiskManager rdisk;
      auto reference = OpenEngineOrDie(
      EngineConfig::FromDataset(&rebuilt, &rdisk, MakeScoring("Linear", d)));

      for (int q = 0; q < 4; ++q) {
        Vec w = Query(rng, d);
        for (Phase2Method m : {Phase2Method::kSP, Phase2Method::kFP,
                               Phase2Method::kBruteForce}) {
          Result<GirComputation> got = engine->ComputeGir(w, k, m);
          Result<GirComputation> want = reference->ComputeGir(w, k, m);
          ASSERT_TRUE(got.ok()) << got.status().message();
          ASSERT_TRUE(want.ok()) << want.status().message();
          // Bit-identical result: ids and raw score doubles.
          EXPECT_EQ(got->topk.result, want->topk.result);
          EXPECT_EQ(got->topk.scores, want->topk.scores);
          EXPECT_EQ(got->snapshot_version,
                    static_cast<uint64_t>(batch_no + 1));
          // The regions are built from different tree shapes, so the
          // constraint lists may differ — but they must describe the
          // same set: agree on random probes and on the query itself.
          EXPECT_TRUE(got->region.Contains(w));
          Rng probe_rng(seed + static_cast<uint64_t>(q) * 131);
          for (int s = 0; s < 40; ++s) {
            Vec probe = Point(probe_rng, d);
            EXPECT_EQ(got->region.Contains(probe),
                      want->region.Contains(probe));
          }
          // IoStats sanity: the traversal charged reads and recorded
          // them consistently.
          EXPECT_GT(got->stats.topk_reads, 0u);
          EXPECT_EQ(got->stats.topk_reads, got->topk.io.reads);
        }
      }
    }
  }
}

TEST(UpdateEngineTest, RejectsMalformedBatches) {
  Dataset data = MakeData("IND", 60, 2, 9);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 2)));

  UpdateBatch bad_dim;
  bad_dim.inserts.push_back(Vec{0.5, 0.5, 0.5});
  EXPECT_EQ(engine->ApplyUpdates(bad_dim).status().code(),
            StatusCode::kInvalidArgument);

  UpdateBatch out_of_cube;
  out_of_cube.inserts.push_back(Vec{0.5, 1.5});
  EXPECT_EQ(engine->ApplyUpdates(out_of_cube).status().code(),
            StatusCode::kInvalidArgument);

  UpdateBatch dup;
  dup.deletes = {3, 3};
  EXPECT_EQ(engine->ApplyUpdates(dup).status().code(),
            StatusCode::kInvalidArgument);

  UpdateBatch out_of_range;
  out_of_range.deletes = {999};
  EXPECT_EQ(engine->ApplyUpdates(out_of_range).status().code(),
            StatusCode::kInvalidArgument);

  // Nothing was mutated by the rejected batches.
  EXPECT_EQ(engine->dataset_version(), 0u);
  EXPECT_EQ(data.live_size(), 60u);

  UpdateBatch dead;
  dead.deletes = {3};
  ASSERT_TRUE(engine->ApplyUpdates(dead).ok());
  EXPECT_EQ(engine->ApplyUpdates(dead).status().code(),
            StatusCode::kInvalidArgument);  // already tombstoned

  const Dataset& cdata = data;
  DiskManager disk2;
  auto frozen = OpenEngineOrDie(
      EngineConfig::FromDataset(&cdata, &disk2, MakeScoring("Linear", 2)));
  EXPECT_EQ(frozen->ApplyUpdates(UpdateBatch{}).status().code(),
            StatusCode::kFailedPrecondition);
}

// ----- incremental cache invalidation -----

TEST(UpdateEngineTest, IncrementalInvalidationServesOnlyFreshResults) {
  const size_t d = 3;
  const size_t k = 6;
  Dataset data = MakeData("IND", 300, d, 77);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
  BatchOptions opts;
  opts.threads = 2;
  BatchEngine batch(engine.get(), opts);

  // Warm the cache with a pool of repeated queries.
  Rng rng(78);
  std::vector<Vec> pool;
  for (int i = 0; i < 12; ++i) pool.push_back(Query(rng, d));
  std::vector<Vec> warm;
  for (int rep = 0; rep < 3; ++rep) {
    warm.insert(warm.end(), pool.begin(), pool.end());
  }
  Result<BatchResult> warm_res =
      batch.ComputeBatch(warm, k, Phase2Method::kFP);
  ASSERT_TRUE(warm_res.ok());
  ASSERT_GT(batch.cache().size(), 0u);

  // Apply a mixed batch through the BatchEngine so its cache is
  // incrementally invalidated.
  UpdateBatch updates;
  for (int i = 0; i < 5; ++i) updates.inserts.push_back(Point(rng, d));
  updates.deletes = PickLive(data, 5, rng);
  Result<UpdateStats> applied = batch.ApplyUpdates(updates);
  ASSERT_TRUE(applied.ok()) << applied.status().message();
  EXPECT_GT(applied->cache_entries_before, 0u);
  EXPECT_GT(applied->cache_lp_tests, 0u);
  EXPECT_EQ(applied->cache_entries_before,
            applied->cache_stale_evicted + applied->cache_delete_evicted +
                applied->cache_insert_evicted + applied->cache_survived);
  EXPECT_EQ(applied->cache_stale_evicted, 0u);  // no racing readers here

  // Every query served after the update — cached or computed — must
  // match a from-scratch rebuild of the mutated dataset.
  Dataset rebuilt = data;
  DiskManager rdisk;
  auto reference = OpenEngineOrDie(
      EngineConfig::FromDataset(&rebuilt, &rdisk, MakeScoring("Linear", d)));
  Result<BatchResult> after = batch.ComputeBatch(pool, k, Phase2Method::kFP);
  ASSERT_TRUE(after.ok());
  for (size_t i = 0; i < pool.size(); ++i) {
    ASSERT_TRUE(after->items[i].status.ok());
    Result<GirComputation> want = reference->ComputeGir(pool[i], k,
                                                       Phase2Method::kFP);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(after->items[i].topk, want->topk.result) << "query " << i;
  }
  // Surviving entries actually served: if anything survived, at least
  // one of the repeated queries must have hit the cache.
  if (applied->cache_survived > 0) {
    EXPECT_GT(after->stats.exact_hits, 0u);
  }
}

TEST(UpdateEngineTest, VersionStampBlocksStaleHitsWithoutInvalidation) {
  const size_t d = 2;
  const size_t k = 4;
  Dataset data = MakeData("IND", 150, d, 31);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
  BatchEngine batch(engine.get());

  Rng rng(32);
  std::vector<Vec> pool = {Query(rng, d), Query(rng, d)};
  ASSERT_TRUE(batch.ComputeBatch(pool, k, Phase2Method::kFP).ok());
  ASSERT_GT(batch.cache().size(), 0u);

  // Mutate the engine *without* handing it the batch cache: the stamp
  // mismatch alone must prevent every stale hit.
  UpdateBatch updates;
  updates.deletes = PickLive(data, 3, rng);
  ASSERT_TRUE(engine->ApplyUpdates(updates).ok());

  Result<BatchResult> after = batch.ComputeBatch(pool, k, Phase2Method::kFP);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->stats.exact_hits, 0u);

  Dataset rebuilt = data;
  DiskManager rdisk;
  auto reference = OpenEngineOrDie(
      EngineConfig::FromDataset(&rebuilt, &rdisk, MakeScoring("Linear", d)));
  for (size_t i = 0; i < pool.size(); ++i) {
    Result<GirComputation> want =
        reference->ComputeGir(pool[i], k, Phase2Method::kFP);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(after->items[i].topk, want->topk.result);
  }
}

// Regression: an entry stamped with an *older* epoch than the one the
// invalidation pass closes out was never tested against the
// intermediate batches (its query computed on a retired snapshot) — it
// must be evicted, never re-stamped into the new epoch.
TEST(UpdateEngineTest, InvalidationNeverResurrectsOldEpochEntries) {
  const size_t d = 2;
  const size_t k = 4;
  Dataset data = MakeData("IND", 120, d, 41);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
  Vec w{0.5, 0.8};
  Result<GirComputation> gir = engine->ComputeGir(w, k, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());

  ShardedGirCache cache(16, 2);
  // Entry from the current epoch (version 1 when closing out to 2) and
  // a laggard from epoch 0 (inserted by a reader that raced an update).
  cache.Insert(k, gir->topk.result, gir->region, /*version=*/1);
  Vec w2{0.9, 0.2};
  Result<GirComputation> gir2 = engine->ComputeGir(w2, k, Phase2Method::kFP);
  ASSERT_TRUE(gir2.ok());
  cache.Insert(k, gir2->topk.result, gir2->region, /*version=*/0);

  UpdateInvalidation inv = cache.InvalidateForUpdates(
      /*deleted=*/{}, /*inserted_g=*/{}, data, engine->scoring(),
      /*new_version=*/2);
  EXPECT_EQ(inv.entries_before, 2u);
  EXPECT_EQ(inv.stale_evicted, 1u);
  EXPECT_EQ(inv.survived, 1u);
  // The laggard is gone; the current-epoch entry serves at version 2.
  EXPECT_EQ(cache.Probe(w, k, /*version=*/2).kind,
            ShardedGirCache::HitKind::kExact);
  EXPECT_EQ(cache.Probe(w2, k, /*version=*/2).kind,
            ShardedGirCache::HitKind::kMiss);
  EXPECT_EQ(cache.size(), 1u);
}

// Regression: a probe carrying an older version (a reader that loaded
// dataset_version() just before an update published) must not erase
// entries already re-stamped to the newer epoch — those are exactly the
// survivors the incremental invalidation preserved.
TEST(UpdateEngineTest, StaleProbeDoesNotEraseNewerEpochEntries) {
  Dataset data = MakeData("IND", 120, 2, 43);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 2)));
  Vec w{0.4, 0.9};
  Result<GirComputation> gir = engine->ComputeGir(w, 4, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());

  ShardedGirCache cache(16, 2);
  cache.Insert(4, gir->topk.result, gir->region, /*version=*/5);
  // Old-epoch probe: miss, but the newer entry survives...
  EXPECT_EQ(cache.Probe(w, 4, /*version=*/4).kind,
            ShardedGirCache::HitKind::kMiss);
  EXPECT_EQ(cache.size(), 1u);
  // ...and serves once the probe catches up.
  EXPECT_EQ(cache.Probe(w, 4, /*version=*/5).kind,
            ShardedGirCache::HitKind::kExact);
  // A probe from a *newer* epoch than the entry does evict it.
  EXPECT_EQ(cache.Probe(w, 4, /*version=*/6).kind,
            ShardedGirCache::HitKind::kMiss);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(GirCacheTest, VersionedProbeEvictsStaleEpochs) {
  Dataset data = MakeData("IND", 80, 2, 55);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 2)));
  Vec w{0.6, 0.7};
  Result<GirComputation> gir = engine->ComputeGir(w, 4, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());

  GirCache cache(8);
  cache.Insert(4, gir->topk.result, gir->region.ConstraintsOnly(),
               /*version=*/1);
  EXPECT_EQ(cache.Probe(w, 4, /*version=*/1).kind, GirCache::HitKind::kExact);
  // Same query at a newer epoch: miss, and the stale entry is dropped.
  EXPECT_EQ(cache.Probe(w, 4, /*version=*/2).kind, GirCache::HitKind::kMiss);
  EXPECT_EQ(cache.size(), 0u);
}

// AdmitsGain is the piercing primitive: a point that beats the k-th
// record at the cached query must pierce; a point dominated by the
// k-th record everywhere must not.
TEST(GirRegionTest, AdmitsGainMatchesBruteForceSampling) {
  Dataset data = MakeData("ANTI", 200, 3, 63);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  Rng rng(64);
  Vec w = Query(rng, 3);
  Result<GirComputation> gir = engine->ComputeGir(w, 5, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());
  const GirRegion& region = gir->region;
  Vec gk = Vec(data.Get(gir->topk.result.back()).begin(),
               data.Get(gir->topk.result.back()).end());

  // A clear winner: strictly dominates the k-th record.
  Vec winner = gk;
  for (double& x : winner) x = std::min(1.0, x + 0.05);
  EXPECT_TRUE(region.AdmitsGain(Sub(winner, gk)));

  // A clear loser: strictly dominated by the k-th record.
  Vec loser = gk;
  for (double& x : loser) x = std::max(0.0, x - 0.05);
  EXPECT_FALSE(region.AdmitsGain(Sub(loser, gk)));

  // Random gains: the LP answer must dominate dense sampling of the
  // region (LP true whenever a sample finds a positive advantage).
  for (int t = 0; t < 30; ++t) {
    Vec p = Point(rng, 3);
    Vec gain = Sub(p, gk);
    bool sampled = false;
    Rng srng(65 + static_cast<uint64_t>(t));
    for (int s = 0; s < 300 && !sampled; ++s) {
      Vec probe = Point(srng, 3);
      if (region.Contains(probe) && Dot(gain, probe) > 1e-9) sampled = true;
    }
    if (sampled) {
      EXPECT_TRUE(region.AdmitsGain(gain));
    }
  }
}

}  // namespace
}  // namespace gir
