// Tests for the performance-substrate plumbing added with the flat
// layout: the dataset's column mirror, the batched scoring transforms,
// the DiskManager reset semantics and the warm-started feasibility
// helper.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "geom/lp.h"
#include "storage/disk_manager.h"
#include "topk/scoring.h"

namespace gir {
namespace {

TEST(DatasetColumnsTest, MirrorsRows) {
  Rng rng(5);
  Dataset data = GenerateIndependent(500, 3, rng);
  for (size_t j = 0; j < 3; ++j) {
    const double* col = data.Column(j);
    for (size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(col[i], data.Get(static_cast<RecordId>(i))[j]);
    }
  }
  // Mutation invalidates and rebuilds the mirror.
  Vec extra = {0.25, 0.5, 0.75};
  data.Append(extra);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(data.Column(j)[data.size() - 1], extra[j]);
  }
}

TEST(ScoringBatchTest, MatchesScalarTransform) {
  Rng rng(9);
  std::vector<double> xs(257);
  for (double& x : xs) x = rng.Uniform();
  std::vector<double> batch(xs.size());
  for (const char* name : {"Linear", "Polynomial", "Mixed"}) {
    std::unique_ptr<ScoringFunction> s = MakeScoring(name, 4);
    for (size_t j = 0; j < 4; ++j) {
      s->TransformDimBatch(j, xs.data(), xs.size(), batch.data());
      for (size_t i = 0; i < xs.size(); ++i) {
        EXPECT_EQ(batch[i], s->TransformDim(j, xs[i]))
            << name << " dim " << j << " i " << i;
      }
    }
  }
  EXPECT_TRUE(LinearScoring(4).IsIdentityTransform());
  EXPECT_FALSE(MixedScoring(4).IsIdentityTransform());
}

TEST(DiskManagerTest, ResetStatsClearsThreadDelta) {
  DiskManager disk;
  disk.NoteRead();
  disk.NoteRead();
  disk.NoteWrite();
  EXPECT_GE(DiskManager::ThreadStats().reads, 2u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().reads, 0u);
  EXPECT_EQ(disk.stats().writes, 0u);
  // The calling thread's accumulator is cleared too, so a fresh
  // before/after diff starting at the reset point is exact.
  EXPECT_EQ(DiskManager::ThreadStats().reads, 0u);
  EXPECT_EQ(DiskManager::ThreadStats().writes, 0u);
  IoStats before = DiskManager::ThreadStats();
  disk.NoteRead();
  IoStats delta = DiskManager::ThreadStats() - before;
  EXPECT_EQ(delta.reads, 1u);
}

TEST(RefreshFeasiblePointTest, ReusesSurvivingWitness) {
  // x >= 0.2 in both dimensions (as half-spaces) within the unit box.
  std::vector<Halfspace> ge;
  ge.push_back(Halfspace{{1.0, 0.0}, 0.2});
  ge.push_back(Halfspace{{0.0, 1.0}, 0.2});
  Vec point;  // empty: first call must solve the LP
  Result<bool> r = RefreshFeasiblePoint(ge, 0.0, 1.0, 1e-6, &point);
  ASSERT_TRUE(r.ok() && *r);
  ASSERT_EQ(point.size(), 2u);
  Vec warm = point;
  // A constraint the witness already satisfies: the point is untouched.
  ge.push_back(Halfspace{{1.0, 1.0}, 0.5});
  ASSERT_GT(warm[0] + warm[1], 0.5);
  r = RefreshFeasiblePoint(ge, 0.0, 1.0, 1e-6, &point);
  ASSERT_TRUE(r.ok() && *r);
  EXPECT_EQ(point, warm);
  // A constraint that cuts the witness off forces a re-solve.
  ge.push_back(Halfspace{{-1.0, 0.0}, -0.21});  // x <= 0.21
  r = RefreshFeasiblePoint(ge, 0.0, 1.0, 1e-6, &point);
  ASSERT_TRUE(r.ok() && *r);
  EXPECT_LE(point[0], 0.21);
  EXPECT_GE(point[0], 0.2);
  // An infeasible system reports "no" without erroring.
  ge.push_back(Halfspace{{1.0, 0.0}, 0.9});  // x >= 0.9 contradicts x <= 0.21
  r = RefreshFeasiblePoint(ge, 0.0, 1.0, 1e-6, &point);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

}  // namespace
}  // namespace gir
