// Durability contract of the write-ahead log: every batch ApplyUpdates
// acknowledges survives any crash bit-identically (two-phase recovery:
// newest valid snapshot/arena epoch + committed WAL replay), no batch
// whose ack failed is ever replayed, a torn tail truncates at the first
// bad record, replay is idempotent across repeated crashes, and
// checkpoints reclaim exactly the segments they made obsolete.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/engine.h"
#include "index/rtree_codec.h"
#include "storage/disk_manager.h"
#include "storage/fault_injector.h"
#include "storage/snapshot_store.h"
#include "storage/wal.h"
#include "topk/scoring.h"

namespace gir {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kDataSeed = 1010;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (fs::path(testing::TempDir()) / name).string();
  fs::remove_all(dir);
  return dir;
}

Dataset FreshData(size_t n = 200, size_t dim = 3) {
  Rng rng(kDataSeed);
  auto data = GenerateByName("IND", n, dim, rng);
  EXPECT_TRUE(data.ok());
  return std::move(*data);
}

Vec Point(Rng& rng, size_t d) {
  Vec p(d);
  for (double& x : p) x = rng.Uniform();
  return p;
}

// Deterministic mixed batch for epoch `e` over a dataset of >= 50 rows:
// two inserts, one delete of a low id unique per epoch.
UpdateBatch MixedBatch(uint64_t e, size_t d) {
  Rng rng(7000 + e);
  UpdateBatch batch;
  batch.inserts.push_back(Point(rng, d));
  batch.inserts.push_back(Point(rng, d));
  batch.deletes = {static_cast<RecordId>(3 * e)};
  return batch;
}

void ExpectSameDataset(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.dim(), b.dim());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.live_size(), b.live_size());
  for (size_t i = 0; i < a.size(); ++i) {
    const RecordId id = static_cast<RecordId>(i);
    ASSERT_EQ(a.IsLive(id), b.IsLive(id)) << "record " << i;
    VecView ra = a.Get(id);
    VecView rb = b.Get(id);
    for (size_t j = 0; j < a.dim(); ++j) {
      ASSERT_EQ(ra[j], rb[j]) << "record " << i << " dim " << j;
    }
  }
}

// Bitwise query probes: ids, raw score doubles and the simulated I/O
// charged must all agree.
void ExpectBitIdenticalQueries(GirEngine* a, GirEngine* b, size_t d,
                               bool compare_io = true) {
  Rng rng(41);
  for (int probe = 0; probe < 8; ++probe) {
    Vec w(d);
    for (double& x : w) x = 0.05 + rng.Uniform(0.0, 0.95);
    auto ra = a->ComputeGir(w, 8, Phase2Method::kFP);
    auto rb = b->ComputeGir(w, 8, Phase2Method::kFP);
    ASSERT_TRUE(ra.ok()) << ra.status().message();
    ASSERT_TRUE(rb.ok()) << rb.status().message();
    EXPECT_EQ(ra->topk.result, rb->topk.result) << "probe " << probe;
    EXPECT_EQ(ra->topk.scores, rb->topk.scores) << "probe " << probe;
    if (compare_io) {
      EXPECT_EQ(ra->topk.io.reads, rb->topk.io.reads) << "probe " << probe;
    }
  }
}

// ----- segment format: round trip, torn tails, corruption -----

TEST(WalStoreTest, RoundTripReplaysCommittedRecordsPastAnEpoch) {
  WalStore store(FreshDir("wal_roundtrip"));
  auto writer = WalWriter::Open(&store, /*base_epoch=*/0, /*dim=*/2);
  ASSERT_TRUE(writer.ok()) << writer.status().message();
  UpdateBatch b1;
  b1.inserts = {{0.25, 0.75}};
  UpdateBatch b2;
  b2.deletes = {11, 7};
  UpdateBatch b3;
  b3.inserts = {{0.5, 0.5}, {0.125, 0.875}};
  b3.deletes = {2};
  ASSERT_TRUE((*writer)->AppendDurable(b1, 1).ok());
  ASSERT_TRUE((*writer)->AppendDurable(b2, 2).ok());
  ASSERT_TRUE((*writer)->AppendDurable(b3, 3).ok());
  const WalWriter::Stats stats = (*writer)->stats();
  EXPECT_EQ(stats.appends, 3u);
  EXPECT_GE(stats.fsyncs, 1u);  // window 0: every ack is covered
  writer->reset();

  auto log = store.ReadCommitted(0);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->wal_dim, 2u);
  EXPECT_EQ(log->committed_seen, 3u);
  EXPECT_EQ(log->torn_truncated, 0u);
  EXPECT_EQ(log->gap_dropped, 0u);
  EXPECT_EQ(log->tail_epoch, 3u);
  ASSERT_EQ(log->records.size(), 3u);
  EXPECT_EQ(log->records[0].epoch, 1u);
  EXPECT_EQ(log->records[0].batch.inserts, b1.inserts);
  EXPECT_EQ(log->records[1].batch.deletes, b2.deletes);
  EXPECT_EQ(log->records[2].batch.inserts, b3.inserts);
  EXPECT_EQ(log->records[2].batch.deletes, b3.deletes);

  // Replay past epoch 2 skips the covered prefix (idempotence).
  auto tail = store.ReadCommitted(2);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->overlap_skipped, 2u);
  ASSERT_EQ(tail->records.size(), 1u);
  EXPECT_EQ(tail->records[0].epoch, 3u);

  // Nothing past the tail: every committed record is overlap.
  auto none = store.ReadCommitted(3);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->records.empty());
  EXPECT_EQ(none->overlap_skipped, 3u);
}

// Crash-point sweep over the on-disk bytes: truncating the segment at
// EVERY byte offset must yield exactly the longest committed prefix —
// never an error, never a half-applied record, never a record from
// beyond the cut.
TEST(WalStoreTest, TornTailSweepReplaysExactlyTheCommittedPrefix) {
  const std::string dir = FreshDir("wal_torn_sweep");
  WalStore store(dir);
  {
    auto writer = WalWriter::Open(&store, 0, /*dim=*/2);
    ASSERT_TRUE(writer.ok());
    for (uint64_t e = 1; e <= 3; ++e) {
      UpdateBatch b;
      b.inserts = {{0.1 * static_cast<double>(e), 0.2}};
      b.deletes = {static_cast<RecordId>(e)};
      ASSERT_TRUE((*writer)->AppendDurable(b, e).ok());
    }
  }
  const fs::path seg = fs::path(dir) / WalStore::SegmentFileName(0);
  std::vector<char> bytes;
  {
    std::ifstream in(seg, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // Header is 28 bytes; each record frame here is crc(4) + len(8) +
  // payload(8 epoch + 8 n_ins + 16 insert + 8 n_del + 8 delete) +
  // commit marker(4) = 64 bytes.
  const size_t header = 28;
  const size_t frame = 64;
  ASSERT_EQ(bytes.size(), header + 3 * frame);

  const std::string cut_dir = FreshDir("wal_torn_sweep_cut");
  WalStore cut_store(cut_dir);
  fs::create_directories(cut_dir);
  const fs::path cut_seg =
      fs::path(cut_dir) / WalStore::SegmentFileName(0);
  for (size_t len = 0; len <= bytes.size(); ++len) {
    std::ofstream out(cut_seg, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    auto log = cut_store.ReadCommitted(0);
    ASSERT_TRUE(log.ok()) << "cut at " << len;
    const size_t expect =
        len < header ? 0 : std::min<size_t>(3, (len - header) / frame);
    ASSERT_EQ(log->records.size(), expect) << "cut at " << len;
    for (size_t r = 0; r < expect; ++r) {
      EXPECT_EQ(log->records[r].epoch, r + 1) << "cut at " << len;
    }
    if (len < bytes.size()) {
      // Short of a full segment, the cut is visible as a truncation
      // except exactly at a record boundary, where the prefix simply
      // ends clean.
      const bool at_boundary =
          len >= header && (len - header) % frame == 0;
      EXPECT_EQ(log->torn_truncated, at_boundary ? 0u : 1u)
          << "cut at " << len;
    } else {
      EXPECT_EQ(log->torn_truncated, 0u);
    }
  }
}

// A flipped byte in the middle of the log stops replay at the damaged
// record even though later records are intact on disk: those records
// were acknowledged after the corruption hit the platter, but applying
// them without the damaged one would tear the epoch sequence.
TEST(WalStoreTest, CorruptRecordTruncatesReplayAtTheDamage) {
  const std::string dir = FreshDir("wal_corrupt_mid");
  WalStore store(dir);
  {
    auto writer = WalWriter::Open(&store, 0, /*dim=*/2);
    ASSERT_TRUE(writer.ok());
    for (uint64_t e = 1; e <= 3; ++e) {
      UpdateBatch b;
      b.inserts = {{0.3, 0.4}};
      ASSERT_TRUE((*writer)->AppendDurable(b, e).ok());
    }
  }
  const fs::path seg = fs::path(dir) / WalStore::SegmentFileName(0);
  {
    // Flip one payload byte of the second record (header 28, 56-byte
    // frames here: crc+len+payload(8+8+16+8)+marker).
    std::fstream f(seg, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    const std::streamoff at = 28 + 56 + 12 + 20;  // inside record 2's row
    f.seekg(at);
    char c = 0;
    f.read(&c, 1);
    c ^= 0x10;
    f.seekp(at);
    f.write(&c, 1);
  }
  auto log = store.ReadCommitted(0);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->records.size(), 1u);
  EXPECT_EQ(log->records[0].epoch, 1u);
  EXPECT_EQ(log->torn_truncated, 1u);
  EXPECT_EQ(log->tail_epoch, 1u);
}

// A torn tail in an OLDER segment must not hide committed records in a
// newer one: that is exactly the disk state after a recovery truncates
// a tail and a fresh writer acknowledges batches into the next segment.
// The scan truncates only the damaged segment and keeps going; Sanitize
// then makes the disk match the plan so the next scan is clean.
TEST(WalStoreTest, TornTailInAnOlderSegmentDoesNotHideNewerSegments) {
  const std::string dir = FreshDir("wal_cross_segment");
  WalStore store(dir);
  {
    auto writer = WalWriter::Open(&store, 0, /*dim=*/2);
    ASSERT_TRUE(writer.ok());
    for (uint64_t e = 1; e <= 2; ++e) {
      UpdateBatch b;
      b.inserts = {{0.1, 0.2}};
      ASSERT_TRUE((*writer)->AppendDurable(b, e).ok());
    }
    ASSERT_TRUE((*writer)->Rotate(2).ok());
    for (uint64_t e = 3; e <= 4; ++e) {
      UpdateBatch b;
      b.inserts = {{0.3, 0.4}};
      ASSERT_TRUE((*writer)->AppendDurable(b, e).ok());
    }
  }
  {
    // Torn tail on the old segment (a half-written frame), plus a junk
    // file that parses as a segment name but has no valid header.
    std::ofstream torn(fs::path(dir) / WalStore::SegmentFileName(0),
                       std::ios::binary | std::ios::app);
    const char junk[11] = "truncated!";
    torn.write(junk, 10);
    torn.close();
    std::ofstream rogue(fs::path(dir) / WalStore::SegmentFileName(1),
                        std::ios::binary);
    for (int i = 0; i < 8; ++i) rogue.write(junk, 10);
    rogue.close();
  }

  auto log = store.ReadCommitted(0);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->torn_truncated, 2u);  // wal-0's tail + the junk header
  EXPECT_EQ(log->tail_epoch, 4u);
  ASSERT_EQ(log->records.size(), 4u);
  for (size_t r = 0; r < 4; ++r) EXPECT_EQ(log->records[r].epoch, r + 1);
  ASSERT_EQ(log->segments.size(), 3u);
  EXPECT_EQ(log->segments[0].action,
            WalStore::SegmentState::Action::kTruncate);
  EXPECT_EQ(log->segments[1].action, WalStore::SegmentState::Action::kRemove);
  EXPECT_EQ(log->segments[2].action, WalStore::SegmentState::Action::kKeep);

  auto cleaned = store.Sanitize(*log);
  ASSERT_TRUE(cleaned.ok()) << cleaned.status().message();
  EXPECT_EQ(cleaned->truncated_segments, 1u);
  EXPECT_EQ(cleaned->removed_segments, 1u);
  ASSERT_EQ(store.ListSegmentBases(), (std::vector<uint64_t>{0, 2}));

  // The sanitized log replays identically and reports zero damage.
  auto again = store.ReadCommitted(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->torn_truncated, 0u);
  EXPECT_EQ(again->tail_epoch, 4u);
  ASSERT_EQ(again->records.size(), 4u);

  // Sanitizing a clean log is a no-op (recovery may re-run it).
  auto noop = store.Sanitize(*again);
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop->truncated_segments, 0u);
  EXPECT_EQ(noop->removed_segments, 0u);
}

// ----- group commit -----

TEST(WalWriterTest, GroupCommitSharesFsyncsAcrossConcurrentAppenders) {
  WalStore store(FreshDir("wal_group"));
  WalOptions options;
  options.group_window_ms = 2.0;
  auto writer = WalWriter::Open(&store, 0, /*dim=*/2, options);
  ASSERT_TRUE(writer.ok());

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 8;
  std::mutex epoch_mu;  // appends must stay in epoch order
  uint64_t next_epoch = 0;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kPerThread; ++i) {
        UpdateBatch b;
        b.inserts = {{0.5, 0.5}};
        uint64_t ticket = 0;
        {
          std::lock_guard<std::mutex> lock(epoch_mu);
          Result<uint64_t> appended = (*writer)->Append(b, ++next_epoch);
          if (!appended.ok()) {
            ++failures;
            continue;
          }
          ticket = *appended;
        }
        if (!(*writer)->WaitDurable(ticket).ok()) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);

  const WalWriter::Stats stats = (*writer)->stats();
  EXPECT_EQ(stats.appends, kThreads * kPerThread);
  // The whole point of the window: strictly fewer fsyncs than acks.
  EXPECT_LT(stats.fsyncs, stats.appends);
  EXPECT_GE(stats.fsyncs, 1u);
  writer->reset();

  auto log = store.ReadCommitted(0);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->records.size(), kThreads * kPerThread);
  EXPECT_EQ(log->tail_epoch, kThreads * kPerThread);
  EXPECT_EQ(log->torn_truncated, 0u);
}

// group_bytes must cut a long commit window short: once the unsynced
// bytes cross the threshold, a parked leader wakes and syncs instead of
// sleeping out the window. The 10 s window here would fail the test by
// timeout arithmetic alone if the threshold wakeup were lost.
TEST(WalWriterTest, ByteThresholdCutsTheCommitWindowShort) {
  WalStore store(FreshDir("wal_group_bytes"));
  WalOptions options;
  options.group_window_ms = 10000.0;
  options.group_bytes = 100;  // each frame below is 56 bytes
  auto writer = WalWriter::Open(&store, 0, /*dim=*/2, options);
  ASSERT_TRUE(writer.ok());

  UpdateBatch b;
  b.inserts = {{0.5, 0.5}};
  const auto start = std::chrono::steady_clock::now();
  Result<uint64_t> t1 = (*writer)->Append(b, 1);
  ASSERT_TRUE(t1.ok());
  std::thread leader([&] {
    // Parks in the window (56 < 100 unsynced bytes) until the second
    // append trips the threshold.
    EXPECT_TRUE((*writer)->WaitDurable(*t1).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Result<uint64_t> t2 = (*writer)->Append(b, 2);
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE((*writer)->WaitDurable(*t2).ok());
  leader.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed_ms, 5000.0);  // far below the 10 s window
  EXPECT_GE((*writer)->stats().fsyncs, 1u);
  writer->reset();

  auto log = store.ReadCommitted(0);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->records.size(), 2u);
}

// ----- engine integration: ack durability, crash recovery -----

TEST(WalEngineTest, AcknowledgedBatchesSurviveCrashBitIdentically) {
  const size_t d = 3;
  Dataset data = FreshData(240, d);
  DiskManager disk;
  const std::string snap_dir = FreshDir("wal_crash_snap");
  const std::string wal_dir = FreshDir("wal_crash_wal");
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d))
          .WithWal(wal_dir));
  ASSERT_TRUE(engine->has_wal());

  // Epoch 1, then a snapshot, then two more acked epochs that exist
  // ONLY in the WAL when the "crash" hits.
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(1, d)).ok());
  SnapshotStore store(snap_dir);
  ASSERT_TRUE(
      store.WriteSnapshot(engine->dataset(), engine->tree(), 1).ok());
  auto up2 = engine->ApplyUpdates(MixedBatch(2, d));
  ASSERT_TRUE(up2.ok());
  EXPECT_TRUE(up2->wal_logged);
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(3, d)).ok());
  EXPECT_EQ(engine->wal_writer_stats().appends, 3u);

  // Crash: the process dies; only snap_dir (epoch 1) and the WAL
  // survive. Two-phase recovery must reach epoch 3.
  DiskManager disk2;
  auto restored = OpenEngineOrDie(
      EngineConfig::FromSnapshotDir(snap_dir, &disk2,
                                    MakeScoring("Linear", d))
          .WithWal(wal_dir));
  EXPECT_EQ(restored->dataset_version(), 3u);
  EXPECT_EQ(restored->wal_recovery().recovered_epoch, 1u);
  EXPECT_EQ(restored->wal_recovery().replayed_to, 3u);
  EXPECT_EQ(restored->wal_recovery().replayed_batches, 2u);
  EXPECT_EQ(restored->wal_recovery().overlap_skipped, 1u);  // epoch 1

  // Bit-identical to the pre-crash engine: dataset bytes, the master
  // tree's page image, query ids/scores and the simulated I/O charged.
  ExpectSameDataset(engine->dataset(), restored->dataset());
  auto img_a = SaveRTreeImage(engine->tree());
  auto img_b = SaveRTreeImage(restored->tree());
  ASSERT_TRUE(img_a.ok());
  ASSERT_TRUE(img_b.ok());
  EXPECT_EQ(*img_a, *img_b);
  ExpectBitIdenticalQueries(engine.get(), restored.get(), d);

  // The epoch sequence continues where the acks left off.
  auto up4 = restored->ApplyUpdates(MixedBatch(4, d));
  ASSERT_TRUE(up4.ok());
  EXPECT_EQ(up4->version, 4u);
}

TEST(WalEngineTest, ReplayIsIdempotentAcrossRepeatedCrashes) {
  const size_t d = 3;
  Dataset data = FreshData(240, d);
  DiskManager disk;
  const std::string snap_dir = FreshDir("wal_double_snap");
  const std::string wal_dir = FreshDir("wal_double_wal");
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d))
          .WithWal(wal_dir));
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(1, d)).ok());
  SnapshotStore store(snap_dir);
  ASSERT_TRUE(
      store.WriteSnapshot(engine->dataset(), engine->tree(), 1).ok());
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(2, d)).ok());
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(3, d)).ok());
  const size_t rows = engine->dataset().size();
  const size_t live = engine->dataset().live_size();

  // Crash #1 mid-operation, recover (replays 2..3), then crash again
  // BEFORE any checkpoint — the second recovery replays the very same
  // records over the same snapshot. Nothing may duplicate.
  DiskManager disk2;
  auto first = OpenEngineOrDie(
      EngineConfig::FromSnapshotDir(snap_dir, &disk2,
                                    MakeScoring("Linear", d))
          .WithWal(wal_dir));
  EXPECT_EQ(first->dataset_version(), 3u);
  EXPECT_EQ(first->dataset().size(), rows);
  EXPECT_EQ(first->dataset().live_size(), live);

  DiskManager disk3;
  auto second = OpenEngineOrDie(
      EngineConfig::FromSnapshotDir(snap_dir, &disk3,
                                    MakeScoring("Linear", d))
          .WithWal(wal_dir));
  EXPECT_EQ(second->dataset_version(), 3u);
  EXPECT_EQ(second->wal_recovery().replayed_batches, 2u);
  // No duplicate ids, no double-applied inserts: the datasets (and so
  // every query) are bit-identical across the two recoveries and the
  // original timeline.
  EXPECT_EQ(second->dataset().size(), rows);
  EXPECT_EQ(second->dataset().live_size(), live);
  ExpectSameDataset(first->dataset(), second->dataset());
  ExpectSameDataset(engine->dataset(), second->dataset());
  ExpectBitIdenticalQueries(first.get(), second.get(), d);
}

TEST(WalEngineTest, FailedBatchLeavesDatasetTreeAndWalUntouched) {
  const size_t d = 3;
  Dataset data = FreshData(120, d);
  DiskManager disk;
  const std::string wal_dir = FreshDir("wal_all_or_nothing");
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d))
          .WithWal(wal_dir));
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(1, d)).ok());

  // Break the index invariant from outside: append a record straight to
  // the caller-owned master dataset, so it is live in the dataset but
  // absent from the R*-tree. Deleting it must fail with kInternal
  // during validation — before the WAL, the tree or the dataset is
  // touched.
  const RecordId rogue = data.AppendRecord(Vec{0.5, 0.5, 0.5});
  const size_t live_before = data.live_size();
  const size_t tree_before = engine->tree().size();

  UpdateBatch poison;
  poison.inserts = {{0.25, 0.25, 0.25}};
  poison.deletes = {rogue};
  auto failed = engine->ApplyUpdates(poison);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);

  // All-or-nothing: no version bump, no tombstone, no insert, no tree
  // mutation — and above all no WAL record (a logged-but-unapplied
  // batch would resurrect the failure at every recovery).
  EXPECT_EQ(engine->dataset_version(), 1u);
  EXPECT_EQ(data.live_size(), live_before);
  EXPECT_TRUE(data.IsLive(rogue));
  EXPECT_EQ(engine->tree().size(), tree_before);
  EXPECT_EQ(engine->wal_writer_stats().appends, 1u);  // only epoch 1
  auto log = engine->wal_store()->ReadCommitted(0);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->records.size(), 1u);
  EXPECT_EQ(log->records[0].epoch, 1u);

  // The engine keeps working for well-formed batches.
  auto next = engine->ApplyUpdates(MixedBatch(2, d));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->version, 2u);
}

// ----- injected faults on the commit path -----

TEST(WalEngineTest, FsyncErrorFailsTheAckAndTheBatchIsNeverReplayed) {
  const size_t d = 3;
  Dataset data = FreshData(120, d);
  DiskManager disk;
  const std::string wal_dir = FreshDir("wal_fsync_eio");
  FaultPlan plan;
  plan.seed = 77;
  plan.wal_fsync_error_rate = 1.0;
  plan.skip_ops = 1;  // first group commit clean, second fails
  FaultInjector fi(plan);
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d))
          .WithWal(wal_dir, WalOptions{}, &fi));

  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(1, d)).ok());
  const size_t live_before = data.live_size();
  auto failed = engine->ApplyUpdates(MixedBatch(2, d));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(fi.wal_fsync_errors(), 1u);
  // EIO on commit: the ack failed, so nothing was mutated...
  EXPECT_EQ(engine->dataset_version(), 1u);
  EXPECT_EQ(data.live_size(), live_before);
  // ...and the writer is poisoned — a half-durable log cannot take
  // more acks until recovery truncates it.
  EXPECT_FALSE(engine->ApplyUpdates(MixedBatch(2, d)).ok());

  // The un-acked batch was rolled back off the segment: replay sees
  // exactly the acknowledged epoch and nothing more.
  WalStore probe(wal_dir);
  auto log = probe.ReadCommitted(0);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->records.size(), 1u);
  EXPECT_EQ(log->records[0].epoch, 1u);
  EXPECT_EQ(log->torn_truncated, 0u);
}

TEST(WalEngineTest, TornAppendFailsTheAckAndRecoveryTruncatesTheTail) {
  const size_t d = 3;
  Dataset data = FreshData(240, d);
  DiskManager disk;
  const std::string snap_dir = FreshDir("wal_torn_snap");
  const std::string wal_dir = FreshDir("wal_torn_wal");
  FaultPlan plan;
  plan.seed = 78;
  plan.wal_torn_rate = 1.0;
  plan.skip_ops = 2;  // two clean appends, then the torn one
  FaultInjector fi(plan);
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d))
          .WithWal(wal_dir, WalOptions{}, &fi));
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(1, d)).ok());
  SnapshotStore store(snap_dir);
  ASSERT_TRUE(
      store.WriteSnapshot(engine->dataset(), engine->tree(), 1).ok());
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(2, d)).ok());

  auto torn = engine->ApplyUpdates(MixedBatch(3, d));
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(fi.wal_torn_appends(), 1u);
  EXPECT_EQ(engine->dataset_version(), 2u);  // epoch 3 never acked

  // Recovery (no injector: reading damage is not a fault) truncates the
  // torn tail and lands exactly on the acknowledged prefix.
  DiskManager disk2;
  auto restored = OpenEngineOrDie(
      EngineConfig::FromSnapshotDir(snap_dir, &disk2,
                                    MakeScoring("Linear", d))
          .WithWal(wal_dir));
  EXPECT_EQ(restored->dataset_version(), 2u);
  EXPECT_EQ(restored->wal_recovery().replayed_batches, 1u);
  EXPECT_EQ(restored->wal_recovery().torn_truncated, 1u);
  // Recovery physically cut the torn tail off the segment, not just
  // the in-memory replay.
  EXPECT_EQ(restored->wal_recovery().segments_truncated, 1u);
  ExpectSameDataset(engine->dataset(), restored->dataset());
  // And the recovered engine accepts new acks again.
  auto up3 = restored->ApplyUpdates(MixedBatch(3, d));
  ASSERT_TRUE(up3.ok());
  EXPECT_EQ(up3->version, 3u);
}

// The double-crash sequence behind physical sanitization: a torn tail,
// a recovery, an acked batch on the recovered engine (which lands in a
// NEW segment), then a second crash. If recovery only truncated the
// tail logically, the second scan would stop at the old segment's
// damage, never reach the new segment, and the writer's O_TRUNC open
// would destroy the acked batch — the ack guarantee demands it survive.
TEST(WalEngineTest, AckedBatchAfterTornTailRecoverySurvivesASecondCrash) {
  const size_t d = 3;
  Dataset data = FreshData(240, d);
  DiskManager disk;
  const std::string snap_dir = FreshDir("wal_torn_twice_snap");
  const std::string wal_dir = FreshDir("wal_torn_twice_wal");
  FaultPlan plan;
  plan.seed = 81;
  plan.wal_torn_rate = 1.0;
  plan.skip_ops = 2;  // two clean appends, then the torn one
  FaultInjector fi(plan);
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d))
          .WithWal(wal_dir, WalOptions{}, &fi));
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(1, d)).ok());
  SnapshotStore store(snap_dir);
  ASSERT_TRUE(
      store.WriteSnapshot(engine->dataset(), engine->tree(), 1).ok());
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(2, d)).ok());
  ASSERT_FALSE(engine->ApplyUpdates(MixedBatch(3, d)).ok());  // torn

  // Crash #1, recover, acknowledge one more batch on the restored
  // engine — it goes to a fresh segment past the sanitized tail.
  DiskManager disk2;
  auto restored = OpenEngineOrDie(
      EngineConfig::FromSnapshotDir(snap_dir, &disk2,
                                    MakeScoring("Linear", d))
          .WithWal(wal_dir));
  EXPECT_EQ(restored->dataset_version(), 2u);
  EXPECT_EQ(restored->wal_recovery().segments_truncated, 1u);
  auto up3 = restored->ApplyUpdates(MixedBatch(3, d));
  ASSERT_TRUE(up3.ok());
  EXPECT_EQ(up3->version, 3u);

  // Crash #2: the second recovery must replay across BOTH segments —
  // the truncated pre-crash one and the post-recovery one.
  DiskManager disk3;
  auto again = OpenEngineOrDie(
      EngineConfig::FromSnapshotDir(snap_dir, &disk3,
                                    MakeScoring("Linear", d))
          .WithWal(wal_dir));
  EXPECT_EQ(again->dataset_version(), 3u);
  EXPECT_EQ(again->wal_recovery().replayed_batches, 2u);  // epochs 2, 3
  EXPECT_EQ(again->wal_recovery().torn_truncated, 0u);  // disk was clean
  ExpectSameDataset(restored->dataset(), again->dataset());
  ExpectBitIdenticalQueries(restored.get(), again.get(), d);
}

// ----- checkpoints and arena-based recovery -----

TEST(WalEngineTest, CheckpointRotatesAndTruncatesObsoleteSegments) {
  const size_t d = 3;
  Dataset data = FreshData(200, d);
  DiskManager disk;
  const std::string snap_dir = FreshDir("wal_ckpt_snap");
  const std::string wal_dir = FreshDir("wal_ckpt_wal");
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d))
          .WithWal(wal_dir));
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(1, d)).ok());
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(2, d)).ok());

  SnapshotStore store(snap_dir);
  auto ckpt = engine->Checkpoint(&store);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().message();
  EXPECT_EQ(ckpt->version, 2u);
  EXPECT_TRUE(ckpt->wal_truncated);
  EXPECT_EQ(ckpt->wal_segments_removed, 1u);  // wal-0 covered by arena-2
  EXPECT_EQ(engine->wal_writer_stats().rotations, 1u);
  const std::vector<uint64_t> bases =
      engine->wal_store()->ListSegmentBases();
  ASSERT_EQ(bases.size(), 1u);
  EXPECT_EQ(bases[0], 2u);

  // Post-checkpoint acks land in the fresh segment; arena + WAL-tail
  // recovery then reaches them without the removed segment.
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(3, d)).ok());
  DiskManager disk2;
  auto restored = OpenEngineOrDie(
      EngineConfig::FromArena(snap_dir, &disk2, MakeScoring("Linear", d))
          .WithWal(wal_dir));
  EXPECT_EQ(restored->dataset_version(), 3u);
  EXPECT_EQ(restored->wal_recovery().recovered_epoch, 2u);
  EXPECT_EQ(restored->wal_recovery().replayed_batches, 1u);
  EXPECT_TRUE(restored->has_master_tree());  // replay needed a rebuild
  ExpectSameDataset(engine->dataset(), restored->dataset());
  // Rebuilt from the arena image, not the page-identical snapshot: the
  // update-vs-rebuild property guarantees identical results, not
  // identical page accounting.
  ExpectBitIdenticalQueries(engine.get(), restored.get(), d,
                            /*compare_io=*/false);
}

TEST(WalEngineTest, DamagedCheckpointKeepsEveryWalSegment) {
  const size_t d = 3;
  Dataset data = FreshData(160, d);
  DiskManager disk;
  const std::string snap_dir = FreshDir("wal_torn_ckpt_snap");
  const std::string wal_dir = FreshDir("wal_torn_ckpt_wal");
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d))
          .WithWal(wal_dir));
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(1, d)).ok());
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(2, d)).ok());

  // A flipped byte inside a section payload: only the arena checksum
  // can tell (a torn write may shear nothing but alignment padding, so
  // corruption is the deterministic way to damage the checkpoint).
  FaultPlan plan;
  plan.seed = 79;
  plan.corrupt_rate = 1.0;
  FaultInjector fi(plan);
  SnapshotStore faulty(snap_dir, &fi);
  auto ckpt = engine->Checkpoint(&faulty);
  ASSERT_TRUE(ckpt.ok());  // the damaged publish itself reports success
  // ...but the post-publish validation caught it: truncating the WAL
  // now would widen the data-loss window, so nothing was removed.
  EXPECT_FALSE(ckpt->wal_truncated);
  EXPECT_EQ(ckpt->wal_segments_removed, 0u);
  WalStore probe(wal_dir);
  auto log = probe.ReadCommitted(0);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->tail_epoch, 2u);  // both epochs still replayable
}

TEST(WalEngineTest, ArenaWithNoWalTailServesReadOnlyFromTheMapping) {
  const size_t d = 3;
  Dataset data = FreshData(160, d);
  DiskManager disk;
  const std::string snap_dir = FreshDir("wal_arena_clean_snap");
  const std::string wal_dir = FreshDir("wal_arena_clean_wal");
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d))
          .WithWal(wal_dir));
  ASSERT_TRUE(engine->ApplyUpdates(MixedBatch(1, d)).ok());
  SnapshotStore store(snap_dir);
  ASSERT_TRUE(engine->Checkpoint(&store).ok());

  // Checkpoint at epoch 1 left no committed tail: the arena open takes
  // the mmap fast path — read-only, no master tree, no writer.
  DiskManager disk2;
  auto served = OpenEngineOrDie(
      EngineConfig::FromArena(snap_dir, &disk2, MakeScoring("Linear", d))
          .WithWal(wal_dir));
  EXPECT_EQ(served->dataset_version(), 1u);
  EXPECT_FALSE(served->has_master_tree());
  EXPECT_FALSE(served->has_wal());
  EXPECT_NE(served->wal_store(), nullptr);
  EXPECT_EQ(served->ApplyUpdates(MixedBatch(2, d)).status().code(),
            StatusCode::kFailedPrecondition);
  ExpectBitIdenticalQueries(engine.get(), served.get(), d,
                            /*compare_io=*/false);
}

TEST(WalEngineTest, ReadOnlyDatasetSourceRefusesAWal) {
  const size_t d = 2;
  Dataset data = FreshData(60, d);
  const Dataset& frozen = data;
  DiskManager disk;
  EngineConfig config =
      EngineConfig::FromDataset(&frozen, &disk, MakeScoring("Linear", d))
          .WithWal(FreshDir("wal_readonly"));
  auto refused = GirEngine::Open(std::move(config));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gir
