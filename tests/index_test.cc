#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dataset/generators.h"
#include "index/mbb.h"
#include "index/rtree.h"

namespace gir {
namespace {

TEST(MbbTest, ExpandAndArea) {
  Mbb box = Mbb::EmptyBox(2);
  EXPECT_TRUE(box.IsEmpty());
  box.ExpandTo(Vec{0.2, 0.4});
  box.ExpandTo(Vec{0.6, 0.1});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_DOUBLE_EQ(box.Area(), 0.4 * 0.3);
  EXPECT_DOUBLE_EQ(box.Margin(), 0.4 + 0.3);
}

TEST(MbbTest, OverlapAndContainment) {
  Mbb a{{0.0, 0.0}, {0.5, 0.5}};
  Mbb b{{0.25, 0.25}, {0.75, 0.75}};
  Mbb c{{0.6, 0.6}, {0.9, 0.9}};
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 0.0625);
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.ContainsPoint(Vec{0.1, 0.1}));
  EXPECT_FALSE(a.ContainsPoint(Vec{0.6, 0.1}));
  Mbb inner{{0.1, 0.1}, {0.2, 0.2}};
  EXPECT_TRUE(a.ContainsMbb(inner));
  EXPECT_FALSE(inner.ContainsMbb(a));
}

TEST(MbbTest, EnlargementAndMaxDot) {
  Mbb a{{0.0, 0.0}, {0.5, 0.5}};
  Mbb b{{0.5, 0.5}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 1.0 - 0.25);
  Vec w = {2.0, 1.0};
  EXPECT_DOUBLE_EQ(a.MaxDot(w), 2.0 * 0.5 + 1.0 * 0.5);
  // Negative weights pick the lower corner.
  Vec wn = {-1.0, 1.0};
  EXPECT_DOUBLE_EQ(a.MaxDot(wn), 0.0 + 0.5);
}

TEST(MbbTest, PointBox) {
  Mbb p = Mbb::OfPoint(Vec{0.3, 0.7});
  EXPECT_DOUBLE_EQ(p.Area(), 0.0);
  EXPECT_TRUE(p.ContainsPoint(Vec{0.3, 0.7}));
  EXPECT_EQ(p.TopCorner(), (Vec{0.3, 0.7}));
}

class RTreeBuildTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeBuildTest, BulkLoadValidates) {
  const int d = GetParam();
  Rng rng(d);
  Dataset data = GenerateIndependent(5000, d, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  EXPECT_EQ(tree.size(), 5000u);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  EXPECT_GE(tree.height(), 2u);
}

TEST_P(RTreeBuildTest, InsertValidates) {
  const int d = GetParam();
  Rng rng(100 + d);
  Dataset data = GenerateIndependent(2000, d, rng);
  DiskManager disk;
  RTree tree(&data, &disk);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<RecordId>(i));
  }
  EXPECT_EQ(tree.size(), 2000u);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
}

INSTANTIATE_TEST_SUITE_P(Dims, RTreeBuildTest, ::testing::Values(2, 4, 6));

TEST(RTreeTest, RangeQueryMatchesLinearScan) {
  Rng rng(9);
  Dataset data = GenerateIndependent(3000, 3, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  for (int trial = 0; trial < 20; ++trial) {
    Mbb box = Mbb::EmptyBox(3);
    Vec a = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    Vec b = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    box.ExpandTo(a);
    box.ExpandTo(b);
    std::vector<RecordId> got = tree.RangeQuery(box);
    std::sort(got.begin(), got.end());
    std::vector<RecordId> want;
    for (size_t i = 0; i < data.size(); ++i) {
      if (box.ContainsPoint(data.Get(static_cast<RecordId>(i)))) {
        want.push_back(static_cast<RecordId>(i));
      }
    }
    EXPECT_EQ(got, want);
  }
}

TEST(RTreeTest, RangeQueryAfterInserts) {
  Rng rng(10);
  Dataset data = GenerateAnticorrelated(1500, 2, rng);
  DiskManager disk;
  RTree tree(&data, &disk);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<RecordId>(i));
  }
  Mbb box{{0.25, 0.25}, {0.75, 0.75}};
  std::vector<RecordId> got = tree.RangeQuery(box);
  std::sort(got.begin(), got.end());
  std::vector<RecordId> want;
  for (size_t i = 0; i < data.size(); ++i) {
    if (box.ContainsPoint(data.Get(static_cast<RecordId>(i)))) {
      want.push_back(static_cast<RecordId>(i));
    }
  }
  EXPECT_EQ(got, want);
}

TEST(RTreeTest, CapacityMatchesPageBudget) {
  Rng rng(11);
  Dataset data = GenerateIndependent(100, 4, rng);
  DiskManager disk(4096);
  RTree tree(&data, &disk);
  // entry = 2*4*8 + 4 = 68 bytes; (4096-16)/68 = 60.
  EXPECT_EQ(tree.Capacity(), 60u);
}

TEST(RTreeTest, ReadNodeChargesIo) {
  Rng rng(12);
  Dataset data = GenerateIndependent(500, 2, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  disk.ResetStats();
  tree.ReadNode(tree.root());
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_DOUBLE_EQ(disk.ReadMillis(), 10.0);
  tree.PeekNode(tree.root());
  EXPECT_EQ(disk.stats().reads, 1u);
}

TEST(RTreeTest, EmptyTreeValidates) {
  Dataset data(2);
  DiskManager disk;
  RTree tree(&data, &disk);
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.height(), 0u);
}

TEST(RTreeTest, BulkLoadUsesAllRecordsOnce) {
  Rng rng(13);
  Dataset data = GenerateCorrelated(4000, 5, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  Mbb everything{Vec(5, 0.0), Vec(5, 1.0)};
  std::vector<RecordId> all = tree.RangeQuery(everything);
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 4000u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<RecordId>(i));
  }
}

}  // namespace
}  // namespace gir
