// Chaos replay: the full serving stack (traffic generator -> admission
// -> shared-traversal batches -> retries) driven against seeded fault
// schedules. The invariants: the process never crashes, every request
// gets exactly one explicit outcome (conservation), every *served*
// result is bit-identical to the fault-free reference — degradation is
// allowed, wrong answers and silent drops are not — and a fixed plan
// replays the same fault schedule run after run. A snapshot-recovery
// epilogue then proves the post-chaos engine state survives a crash.
// GIR_CHAOS_STRESS=1 (the stress-labeled CTest variant) scales the
// schedule up ~6x.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "dataset/generators.h"
#include "gir/batch_engine.h"
#include "gir/engine.h"
#include "index/rtree_codec.h"
#include "serve/replay.h"
#include "storage/disk_manager.h"
#include "storage/fault_injector.h"
#include "storage/snapshot_store.h"
#include "topk/scoring.h"

namespace gir::serve {
namespace {

constexpr uint64_t kDataSeed = 404;

class TierGuard {
 public:
  TierGuard() : saved_(simd::ActiveTier()) {}
  ~TierGuard() { simd::ForceTier(saved_); }

 private:
  simd::Tier saved_;
};

bool StressMode() {
  const char* env = std::getenv("GIR_CHAOS_STRESS");
  return env != nullptr && env[0] == '1';
}

TrafficConfig ChaosTrace() {
  TrafficConfig c;
  c.seed = 4057;
  c.dim = 3;
  c.k = 8;
  c.events = StressMode() ? 900 : 150;
  c.base_qps = 3000.0;
  c.key_pool = 10;
  c.zipf_s = 1.1;
  c.jitter_prob = 0.3;
  c.update_ratio = 0.1;
  c.updates_per_batch = 4;
  c.delete_fraction = 0.5;
  c.initial_records = 300;
  return c;
}

Dataset FreshData(const TrafficConfig& c) {
  Rng rng(kDataSeed);
  Result<Dataset> d = GenerateByName("IND", c.initial_records, c.dim, rng);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

// The low-rate transient-fault schedule every chaos run replays.
FaultPlan ChaosPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.read_error_rate = 0.005;
  plan.read_latency_rate = 0.002;
  plan.latency_spike_ms = 0.05;  // real sleep: keep it tiny
  return plan;
}

// Shed-free replay (huge deadlines) so admission timing cannot change
// which queries run — faults and retries are the only variable.
Result<ServiceReport> ChaosReplay(const Trace& trace, Dataset* data,
                                  FaultInjector* injector, size_t threads) {
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(data, &disk, MakeScoring("Linear", trace.config.dim)));
  if (injector != nullptr) disk.AttachFaultInjector(injector);
  BatchOptions opts;
  opts.threads = threads;
  opts.cache_capacity = 0;  // every query exercises the storage path
  opts.exec.shared_traversal = true;
  opts.exec.max_retries = 3;
  opts.exec.retry_backoff_ms = 0.01;
  BatchEngine batch(engine.get(), opts);
  ReplayOptions ro;
  ro.admission.max_batch = 16;
  ro.admission.max_wait_ms = 2.0;
  ro.admission.deadline_ms = 1e12;
  ro.admission.queue_capacity = 1 << 20;
  ro.admission.max_width = 8;
  ro.adaptive_width = true;
  ro.shed_on_dispatch = false;
  Result<ServiceReport> report = ReplayTrace(trace, &batch, ro);
  disk.AttachFaultInjector(nullptr);
  return report;
}

TEST(ChaosReplayTest, ServedResultsStayBitwiseCorrectUnderFaults) {
  TierGuard guard;
  Result<Trace> trace = GenerateTrace(ChaosTrace());
  ASSERT_TRUE(trace.ok());
  ASSERT_GT(trace->updates, 0u);

  // Fault-free reference outcomes, per query ordinal.
  ASSERT_EQ(simd::ForceTier(simd::Tier::kScalar), simd::Tier::kScalar);
  Dataset ref_data = FreshData(trace->config);
  Result<ServiceReport> ref = ChaosReplay(*trace, &ref_data, nullptr, 2);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  ASSERT_EQ(ref->outcomes.size(), trace->queries);
  ASSERT_EQ(ref->metrics.failed, 0u);

  const size_t schedules = StressMode() ? 4 : 2;
  for (simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::ForceTier(tier) != tier) continue;  // unsupported CPU
    SCOPED_TRACE(simd::TierName(tier));
    for (size_t s = 0; s < schedules; ++s) {
      SCOPED_TRACE("schedule " + std::to_string(s));
      FaultInjector injector(ChaosPlan(90 + s));
      Dataset data = FreshData(trace->config);
      Result<ServiceReport> report = ChaosReplay(*trace, &data, &injector, 2);
      ASSERT_TRUE(report.ok()) << report.status().ToString();

      // Conservation: every query event has exactly one explicit
      // outcome; nothing vanished.
      const ServiceMetrics& m = report->metrics;
      ASSERT_EQ(report->outcomes.size(), trace->queries);
      EXPECT_EQ(m.requests, trace->queries);
      EXPECT_EQ(m.served + m.shed + m.failed, m.requests);
      EXPECT_EQ(m.shed, 0u);  // shed-free config
      // Every failure here is a terminal storage fault, explicitly
      // classified — no other failure source exists in this trace.
      EXPECT_EQ(m.unavailable, m.failed);

      size_t served = 0;
      for (size_t q = 0; q < trace->queries; ++q) {
        const RequestOutcome& out = report->outcomes[q];
        if (!out.status.ok()) {
          EXPECT_EQ(out.status.code(), StatusCode::kUnavailable)
              << "query " << q;
          continue;
        }
        ++served;
        // Degraded service may drop queries; it may never corrupt one.
        EXPECT_EQ(out.topk, ref->outcomes[q].topk) << "query " << q;
      }
      EXPECT_EQ(served, m.served);
      // The schedule actually bit (else this run proved nothing), and
      // retries absorbed most of it.
      EXPECT_GT(injector.total_faults(), 0u);
      EXPECT_GE(m.fault_retries, m.failed);
      EXPECT_GT(m.Availability(), 0.9);
    }
  }
}

TEST(ChaosReplayTest, FixedPlanReplaysTheSameFaultSchedule) {
  TierGuard guard;
  ASSERT_EQ(simd::ForceTier(simd::Tier::kScalar), simd::Tier::kScalar);
  Result<Trace> trace = GenerateTrace(ChaosTrace());
  ASSERT_TRUE(trace.ok());

  // Single-threaded, so the checked-read op sequence is deterministic;
  // the plan then pins the whole fault schedule bit-identically.
  FaultInjector a(ChaosPlan(7));
  Dataset data_a = FreshData(trace->config);
  Result<ServiceReport> run_a = ChaosReplay(*trace, &data_a, &a, 1);
  ASSERT_TRUE(run_a.ok());

  FaultInjector b(ChaosPlan(7));
  Dataset data_b = FreshData(trace->config);
  Result<ServiceReport> run_b = ChaosReplay(*trace, &data_b, &b, 1);
  ASSERT_TRUE(run_b.ok());

  EXPECT_GT(a.total_faults(), 0u);
  EXPECT_EQ(a.total_faults(), b.total_faults());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(run_a->metrics.served, run_b->metrics.served);
  EXPECT_EQ(run_a->metrics.failed, run_b->metrics.failed);
  EXPECT_EQ(run_a->metrics.fault_retries, run_b->metrics.fault_retries);
  ASSERT_EQ(run_a->outcomes.size(), run_b->outcomes.size());
  for (size_t q = 0; q < run_a->outcomes.size(); ++q) {
    EXPECT_EQ(run_a->outcomes[q].status.code(),
              run_b->outcomes[q].status.code())
        << "query " << q;
    EXPECT_EQ(run_a->outcomes[q].topk, run_b->outcomes[q].topk)
        << "query " << q;
  }
}

TEST(ChaosReplayTest, PostChaosStateSurvivesCrashAndRecovery) {
  TierGuard guard;
  ASSERT_EQ(simd::ForceTier(simd::Tier::kScalar), simd::Tier::kScalar);
  Result<Trace> trace = GenerateTrace(ChaosTrace());
  ASSERT_TRUE(trace.ok());

  // Run the chaos trace to mutate the engine through many epochs, then
  // snapshot the survivor state.
  Dataset data = FreshData(trace->config);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", trace->config.dim)));
  FaultInjector injector(ChaosPlan(55));
  disk.AttachFaultInjector(&injector);
  BatchOptions opts;
  opts.threads = 2;
  opts.cache_capacity = 0;
  opts.exec.shared_traversal = true;
  opts.exec.max_retries = 3;
  opts.exec.retry_backoff_ms = 0.01;
  BatchEngine batch(engine.get(), opts);
  ReplayOptions ro;
  ro.admission.deadline_ms = 1e12;
  ro.admission.queue_capacity = 1 << 20;
  ro.shed_on_dispatch = false;
  ASSERT_TRUE(ReplayTrace(*trace, &batch, ro).ok());
  disk.AttachFaultInjector(nullptr);
  ASSERT_GT(engine->dataset_version(), 0u);

  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "chaos_recovery")
          .string();
  std::filesystem::remove_all(dir);
  SnapshotStore store(dir);
  ASSERT_TRUE(store
                  .WriteSnapshot(engine->dataset(), engine->tree(),
                                 engine->dataset_version())
                  .ok());

  // "Crash", recover, and serve: the restored engine answers every
  // probe bit-identically — including the simulated I/O charged.
  DiskManager disk2;
  auto restored = OpenEngineOrDie(EngineConfig::FromSnapshotDir(
      dir, &disk2, MakeScoring("Linear", trace->config.dim)));
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->dataset_version(), engine->dataset_version());
  Rng rng(31);
  for (int probe = 0; probe < 10; ++probe) {
    Vec w(trace->config.dim);
    double sum = 0.0;
    for (double& x : w) sum += (x = 0.05 + rng.Uniform());
    for (double& x : w) x /= sum;
    auto a = engine->ComputeGir(w, trace->config.k, Phase2Method::kFP);
    auto b = restored->ComputeGir(w, trace->config.k, Phase2Method::kFP);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->topk.result, b->topk.result);
    EXPECT_EQ(a->topk.scores, b->topk.scores);
    EXPECT_EQ(a->topk.io.reads, b->topk.io.reads);
  }
}

// WAL crash-point sweep: a single injected fault — torn append, corrupt
// append, or fsync EIO — is walked across every commit ordinal (killing
// the writer before, during and after each group commit in turn). For
// every crash point, recovery from snapshot + WAL must reproduce
// exactly the acknowledged prefix: every acked batch survives
// bit-identically, no batch whose ack failed is ever replayed.
TEST(ChaosReplayTest, WalCrashPointSweepPreservesExactlyTheAckedPrefix) {
  TierGuard guard;
  ASSERT_EQ(simd::ForceTier(simd::Tier::kScalar), simd::Tier::kScalar);
  const size_t d = 3;
  const size_t n = 120;
  const size_t epochs = StressMode() ? 12 : 5;

  struct Kind {
    const char* name;
    void (*arm)(FaultPlan*);
  };
  const Kind kinds[] = {
      {"torn", [](FaultPlan* p) { p->wal_torn_rate = 1.0; }},
      {"corrupt", [](FaultPlan* p) { p->wal_corrupt_rate = 1.0; }},
      {"fsync", [](FaultPlan* p) { p->wal_fsync_error_rate = 1.0; }},
  };

  auto mixed_batch = [d](uint64_t e) {
    Rng rng(9000 + e);
    UpdateBatch batch;
    Vec p(d);
    for (double& x : p) x = rng.Uniform();
    batch.inserts.push_back(p);
    batch.deletes = {static_cast<RecordId>(2 * e)};
    return batch;
  };

  for (const Kind& kind : kinds) {
    for (size_t crash_op = 0; crash_op <= epochs; ++crash_op) {
      SCOPED_TRACE(std::string(kind.name) + " at op " +
                   std::to_string(crash_op));
      const std::string tag = std::string("wal_sweep_") + kind.name + "_" +
                              std::to_string(crash_op);
      const std::string snap_dir =
          (std::filesystem::path(testing::TempDir()) / (tag + "_snap"))
              .string();
      const std::string wal_dir =
          (std::filesystem::path(testing::TempDir()) / (tag + "_wal"))
              .string();
      std::filesystem::remove_all(snap_dir);
      std::filesystem::remove_all(wal_dir);

      FaultPlan plan;
      plan.seed = 500 + crash_op;
      plan.skip_ops = crash_op;
      plan.max_faults = 1;
      kind.arm(&plan);
      FaultInjector fi(plan);

      Rng data_rng(kDataSeed);
      Result<Dataset> data = GenerateByName("IND", n, d, data_rng);
      ASSERT_TRUE(data.ok());
      DiskManager disk;
      auto engine = OpenEngineOrDie(
          EngineConfig::FromDataset(&*data, &disk, MakeScoring("Linear", d))
              .WithWal(wal_dir, WalOptions{}, &fi));
      SnapshotStore store(snap_dir);
      ASSERT_TRUE(
          store.WriteSnapshot(engine->dataset(), engine->tree(), 0).ok());

      uint64_t acked = 0;
      for (uint64_t e = 1; e <= epochs; ++e) {
        if (engine->ApplyUpdates(mixed_batch(e)).ok()) {
          acked = e;
        } else {
          break;  // the injected crash hit this commit
        }
      }
      // skip_ops pins the fault to commit ordinal crash_op, so exactly
      // that many batches were acknowledged first (all of them when the
      // fault never fired).
      EXPECT_EQ(acked, std::min<uint64_t>(crash_op, epochs));

      // The reference timeline: exactly the acked batches, no WAL.
      Rng ref_rng(kDataSeed);
      Result<Dataset> ref_data = GenerateByName("IND", n, d, ref_rng);
      ASSERT_TRUE(ref_data.ok());
      DiskManager ref_disk;
      auto reference = OpenEngineOrDie(EngineConfig::FromDataset(
          &*ref_data, &ref_disk, MakeScoring("Linear", d)));
      for (uint64_t e = 1; e <= acked; ++e) {
        ASSERT_TRUE(reference->ApplyUpdates(mixed_batch(e)).ok());
      }

      // Crash, recover (clean device), compare: the acked prefix and
      // nothing else, bit-identically.
      DiskManager disk2;
      auto restored = OpenEngineOrDie(
          EngineConfig::FromSnapshotDir(snap_dir, &disk2,
                                        MakeScoring("Linear", d))
              .WithWal(wal_dir));
      EXPECT_EQ(restored->dataset_version(), acked);
      const Dataset& want = reference->dataset();
      const Dataset& got = restored->dataset();
      ASSERT_EQ(got.size(), want.size());
      ASSERT_EQ(got.live_size(), want.live_size());
      for (size_t i = 0; i < want.size(); ++i) {
        const RecordId id = static_cast<RecordId>(i);
        ASSERT_EQ(got.IsLive(id), want.IsLive(id)) << "record " << i;
        for (size_t j = 0; j < d; ++j) {
          ASSERT_EQ(got.Get(id)[j], want.Get(id)[j])
              << "record " << i << " dim " << j;
        }
      }
      Rng probe_rng(61);
      for (int probe = 0; probe < 3; ++probe) {
        Vec w(d);
        for (double& x : w) x = 0.05 + probe_rng.Uniform(0.0, 0.95);
        auto a = reference->ComputeGir(w, 8, Phase2Method::kFP);
        auto b = restored->ComputeGir(w, 8, Phase2Method::kFP);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        EXPECT_EQ(a->topk.result, b->topk.result);
        EXPECT_EQ(a->topk.scores, b->topk.scores);
      }
    }
  }
}

}  // namespace
}  // namespace gir::serve
