// Precision of the boundary events (§3.2): crossing one specific GIR
// facet must produce exactly the result change its provenance predicts
// — a swap of adjacent ranks for ordering facets, or the challenger
// replacing p_k for overtaking facets.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/engine.h"

namespace gir {
namespace {

std::vector<RecordId> ScanTopK(const Dataset& data,
                               const ScoringFunction& scoring, VecView w,
                               size_t k) {
  std::vector<RecordId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](RecordId a, RecordId b) {
    return scoring.Score(data.Get(a), w) > scoring.Score(data.Get(b), w);
  });
  ids.resize(k);
  return ids;
}

// Centroid of the polytope vertices lying on the given constraint's
// hyperplane — a point in the facet's relative interior, where crossing
// affects only that facet.
bool FacetInteriorPoint(const GirRegion& region, int constraint_idx,
                        Vec* out) {
  const GirConstraint& c = region.constraints()[constraint_idx];
  Vec sum(region.dim(), 0.0);
  int count = 0;
  double norm = Norm(c.normal);
  for (const Vec& v : region.polytope().vertices()) {
    if (std::fabs(Dot(c.normal, v)) / norm < 1e-8) {
      for (size_t j = 0; j < v.size(); ++j) sum[j] += v[j];
      ++count;
    }
  }
  if (count < 2) return false;  // facet too degenerate to probe safely
  for (double& x : sum) x /= count;
  *out = std::move(sum);
  return true;
}

class BoundaryCrossingTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundaryCrossingTest, CrossingAFacetCausesThePredictedChange) {
  const int seed = GetParam();
  Rng rng(seed);
  const int d = 3;
  const size_t k = 8;
  Dataset data = GenerateIndependent(600, d, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
  LinearScoring scoring(d);
  Vec w = {rng.Uniform(0.3, 0.8), rng.Uniform(0.3, 0.8),
           rng.Uniform(0.3, 0.8)};
  Result<GirComputation> gir = engine->ComputeGir(w, k, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());
  const std::vector<RecordId>& original = gir->topk.result;

  int facets_probed = 0;
  for (int idx : gir->region.nonredundant_indices()) {
    const GirConstraint& c = gir->region.constraints()[idx];
    Vec center;
    if (!FacetInteriorPoint(gir->region, idx, &center)) continue;
    // Step across the facet from just inside to just outside along the
    // inward/outward normal.
    Vec unit = c.normal;
    if (!NormalizeInPlace(unit)) continue;
    const double eps = 1e-6;
    Vec inside = AddScaled(center, unit, eps);    // normal side: n·q >= 0
    Vec outside = AddScaled(center, unit, -eps);  // violating side
    // Keep probes within the cube and within/without only this facet.
    if (!gir->region.Contains(inside, 0.0)) continue;
    bool crosses_only_this = true;
    for (int other : gir->region.nonredundant_indices()) {
      if (other == idx) continue;
      if (Dot(gir->region.constraints()[other].normal, outside) < 0) {
        crosses_only_this = false;
        break;
      }
    }
    bool in_cube = true;
    for (double x : outside) {
      if (x < 0.0 || x > 1.0) in_cube = false;
    }
    if (!crosses_only_this || !in_cube) continue;
    ++facets_probed;

    EXPECT_EQ(ScanTopK(data, scoring, inside, k), original)
        << "inside-of-facet probe must preserve the result";
    std::vector<RecordId> after = ScanTopK(data, scoring, outside, k);
    std::vector<RecordId> predicted = original;
    if (c.provenance.kind == ConstraintProvenance::Kind::kOrdering) {
      std::swap(predicted[c.provenance.position],
                predicted[c.provenance.position + 1]);
    } else {
      predicted[c.provenance.position] = c.provenance.challenger;
    }
    EXPECT_EQ(after, predicted)
        << "facet " << idx << " ("
        << c.provenance.Describe(original) << ") mispredicted";
  }
  EXPECT_GT(facets_probed, 0) << "no facet was probeable";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundaryCrossingTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(BoundaryCrossingTest, OvertakeEventsNameRealChallengers) {
  Rng rng(100);
  Dataset data = GenerateAnticorrelated(800, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  Vec w = {0.5, 0.6, 0.4};
  Result<GirComputation> gir = engine->ComputeGir(w, 10, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());
  for (const BoundaryEvent& e : gir->region.BoundaryEvents()) {
    if (e.constraint.provenance.kind ==
        ConstraintProvenance::Kind::kOvertake) {
      RecordId ch = e.constraint.provenance.challenger;
      ASSERT_GE(ch, 0);
      ASSERT_LT(static_cast<size_t>(ch), data.size());
      // The challenger is a non-result record.
      EXPECT_EQ(std::count(gir->topk.result.begin(), gir->topk.result.end(),
                           ch),
                0);
    } else {
      int pos = e.constraint.provenance.position;
      ASSERT_GE(pos, 0);
      ASSERT_LT(pos + 1, static_cast<int>(gir->topk.result.size()));
    }
  }
}

}  // namespace
}  // namespace gir
