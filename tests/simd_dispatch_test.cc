// Bit-identity of the runtime-dispatched SIMD kernels across every
// dispatch tier the machine supports: dims 2–10 × IND/COR/ANTI × all
// scoring functions, each tier forced via simd::ForceTier. The scalar
// tier is the reference; every wider tier must reproduce its scores,
// dominance verdicts, range-query survivors and (through the engine)
// IoStats bit for bit — that is the contract that lets the PR 2
// flat-vs-mutable equivalence tests extend unchanged to the SIMD paths.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "dataset/generators.h"
#include "gir/engine.h"
#include "index/flat_rtree.h"
#include "index/mbb.h"
#include "skyline/skyline.h"
#include "topk/tree_kernels.h"

namespace gir {
namespace {

std::vector<simd::Tier> AvailableTiers() {
  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  const int detected = static_cast<int>(simd::DetectedTier());
  if (detected >= static_cast<int>(simd::Tier::kSse2)) {
    tiers.push_back(simd::Tier::kSse2);
  }
  if (detected >= static_cast<int>(simd::Tier::kAvx2)) {
    tiers.push_back(simd::Tier::kAvx2);
  }
  return tiers;
}

// Restores the startup dispatch tier when a test scope ends, so a
// failing assertion can't leak a forced tier into later tests.
class TierGuard {
 public:
  TierGuard() : saved_(simd::ActiveTier()) {}
  ~TierGuard() { simd::ForceTier(saved_); }

 private:
  simd::Tier saved_;
};

Dataset MakeDist(const std::string& dist, size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  if (dist == "COR") return GenerateCorrelated(n, d, rng);
  if (dist == "ANTI") return GenerateAnticorrelated(n, d, rng);
  return GenerateIndependent(n, d, rng);
}

Vec MakeQuery(Rng& rng, size_t d) {
  Vec w(d);
  for (size_t j = 0; j < d; ++j) w[j] = rng.Uniform(0.05, 1.0);
  return w;
}

const char* kDists[] = {"IND", "COR", "ANTI"};
const char* kScorings[] = {"Linear", "Polynomial", "Mixed"};

TEST(SimdDispatchTest, ForceTierClampsAndReports) {
  TierGuard guard;
  EXPECT_EQ(simd::ForceTier(simd::Tier::kScalar), simd::Tier::kScalar);
  // Whatever the machine, forcing the detected tier is always honored.
  EXPECT_EQ(simd::ForceTier(simd::DetectedTier()), simd::DetectedTier());
  // Requests beyond the CPU clamp down, never up.
  simd::Tier avx2 = simd::ForceTier(simd::Tier::kAvx2);
  EXPECT_LE(static_cast<int>(avx2), static_cast<int>(simd::DetectedTier()));
  EXPECT_STREQ(simd::TierName(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::TierName(simd::Tier::kSse2), "sse2");
  EXPECT_STREQ(simd::TierName(simd::Tier::kAvx2), "avx2");
}

// Entry scoring (the SoA hi-plane kernel) and the per-dimension batch
// transforms: every tier bitwise-equal to the forced-scalar reference,
// and the batch transform bitwise-equal to per-element TransformDim.
TEST(SimdDispatchTest, EntryScoresAndTransformsBitIdentical) {
  TierGuard guard;
  const std::vector<simd::Tier> tiers = AvailableTiers();
  for (size_t d = 2; d <= 10; ++d) {
    for (const char* dist : kDists) {
      Dataset data = MakeDist(dist, 1200, d, 1700 + d);
      DiskManager disk;
      RTree tree = RTree::BulkLoad(&data, &disk);
      FlatRTree flat = FlatRTree::Freeze(tree);
      Rng qrng(90 + d);
      Vec w = MakeQuery(qrng, d);
      for (const char* sname : kScorings) {
        std::unique_ptr<ScoringFunction> scoring = MakeScoring(sname, d);

        // Scalar reference sweep over every node of the flat image.
        simd::ForceTier(simd::Tier::kScalar);
        std::vector<std::vector<double>> reference;
        ScoreBuffer buf;
        for (size_t p = 0; p < flat.node_count(); ++p) {
          ComputeEntryScores(*scoring, data,
                             flat.PeekNode(static_cast<PageId>(p)), w, &buf);
          reference.push_back(buf.scores);
        }

        for (simd::Tier tier : tiers) {
          simd::ForceTier(tier);
          for (size_t p = 0; p < flat.node_count(); ++p) {
            ComputeEntryScores(*scoring, data,
                               flat.PeekNode(static_cast<PageId>(p)), w,
                               &buf);
            ASSERT_EQ(buf.scores.size(), reference[p].size());
            for (size_t e = 0; e < buf.scores.size(); ++e) {
              ASSERT_EQ(buf.scores[e], reference[p][e])
                  << "tier=" << simd::TierName(tier) << " dist=" << dist
                  << " scoring=" << sname << " d=" << d << " node=" << p
                  << " entry=" << e;
            }
          }

          // Batch transform == per-element scalar TransformDim.
          const double* column = data.Column(0);
          const size_t n = std::min<size_t>(data.size(), 257);
          std::vector<double> out(n);
          for (size_t j = 0; j < d; ++j) {
            scoring->TransformDimBatch(j, column, n, out.data());
            for (size_t e = 0; e < n; ++e) {
              ASSERT_EQ(out[e], scoring->TransformDim(j, column[e]))
                  << "tier=" << simd::TierName(tier) << " scoring=" << sname
                  << " j=" << j;
            }
          }
        }
      }
    }
  }
}

// Dominance verdicts: SkylineSet evolution (members after every insert)
// and DominatedByMember probes identical on every tier.
TEST(SimdDispatchTest, DominanceVerdictsIdentical) {
  TierGuard guard;
  const std::vector<simd::Tier> tiers = AvailableTiers();
  for (size_t d = 2; d <= 10; ++d) {
    for (const char* dist : kDists) {
      Dataset data = MakeDist(dist, 900, d, 4400 + d);
      simd::ForceTier(simd::Tier::kScalar);
      SkylineSet reference(&data);
      std::vector<bool> inserted;
      for (size_t i = 0; i < data.size(); ++i) {
        inserted.push_back(reference.Insert(static_cast<RecordId>(i)));
      }
      for (simd::Tier tier : tiers) {
        simd::ForceTier(tier);
        SkylineSet sky(&data);
        for (size_t i = 0; i < data.size(); ++i) {
          ASSERT_EQ(sky.Insert(static_cast<RecordId>(i)), inserted[i])
              << "tier=" << simd::TierName(tier) << " dist=" << dist
              << " d=" << d << " record=" << i;
        }
        ASSERT_EQ(sky.members(), reference.members());
        Rng prng(7 + d);
        for (int t = 0; t < 64; ++t) {
          Vec p(d);
          for (double& x : p) x = prng.Uniform();
          EXPECT_EQ(sky.DominatedByMember(p),
                    reference.DominatedByMember(p));
        }
      }
    }
  }
}

// The SoA interval-overlap sweep behind FlatRTree::RangeQuery: same
// survivors on every tier, and they match a brute-force scan.
TEST(SimdDispatchTest, RangeQueryMaskIdentical) {
  TierGuard guard;
  const std::vector<simd::Tier> tiers = AvailableTiers();
  for (size_t d = 2; d <= 10; d += 2) {
    Dataset data = MakeDist("IND", 1500, d, 95 + d);
    DiskManager disk;
    RTree tree = RTree::BulkLoad(&data, &disk);
    FlatRTree flat = FlatRTree::Freeze(tree);
    Rng rng(31 + d);
    for (int t = 0; t < 8; ++t) {
      Mbb box = Mbb::EmptyBox(d);
      for (size_t j = 0; j < d; ++j) {
        double a = rng.Uniform();
        double b = rng.Uniform();
        box.lo[j] = std::min(a, b);
        box.hi[j] = std::max(a, b);
      }
      std::vector<RecordId> expected;
      for (size_t i = 0; i < data.size(); ++i) {
        if (box.ContainsPoint(data.Get(static_cast<RecordId>(i)))) {
          expected.push_back(static_cast<RecordId>(i));
        }
      }
      std::sort(expected.begin(), expected.end());
      for (simd::Tier tier : tiers) {
        simd::ForceTier(tier);
        std::vector<RecordId> got = flat.RangeQuery(box);
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got, expected) << "tier=" << simd::TierName(tier)
                                 << " d=" << d << " trial=" << t;
      }
    }
  }
}

// The batched min/max-dot plane sweeps (general-sign weights) against
// the scalar per-box Mbb::MaxDot accumulation order.
TEST(SimdDispatchTest, MinMaxDotPlanesBitIdentical) {
  TierGuard guard;
  const std::vector<simd::Tier> tiers = AvailableTiers();
  Rng rng(2014);
  for (size_t d = 2; d <= 10; ++d) {
    const size_t n = 133;  // deliberately not a multiple of the lanes
    std::vector<std::vector<double>> lo(d), hi(d);
    for (size_t j = 0; j < d; ++j) {
      lo[j].resize(n);
      hi[j].resize(n);
      for (size_t e = 0; e < n; ++e) {
        double a = rng.Uniform();
        double b = rng.Uniform();
        lo[j][e] = std::min(a, b);
        hi[j][e] = std::max(a, b);
      }
    }
    Vec w(d);
    for (double& x : w) x = rng.Uniform(-1.0, 1.0);  // general sign

    simd::ForceTier(simd::Tier::kScalar);
    std::vector<double> max_ref(n, 0.0), min_ref(n, 0.0);
    for (size_t j = 0; j < d; ++j) {
      AccumulateMaxDotPlane(w[j], lo[j].data(), hi[j].data(), max_ref.data(),
                            n);
      AccumulateMinDotPlane(w[j], lo[j].data(), hi[j].data(), min_ref.data(),
                            n);
    }
    // Per-box scalar cross-check: same value as Mbb::MaxDot.
    for (size_t e = 0; e < n; ++e) {
      Mbb box = Mbb::EmptyBox(d);
      for (size_t j = 0; j < d; ++j) {
        box.lo[j] = lo[j][e];
        box.hi[j] = hi[j][e];
      }
      EXPECT_EQ(max_ref[e], box.MaxDot(w));
    }

    for (simd::Tier tier : tiers) {
      simd::ForceTier(tier);
      std::vector<double> max_got(n, 0.0), min_got(n, 0.0);
      for (size_t j = 0; j < d; ++j) {
        AccumulateMaxDotPlane(w[j], lo[j].data(), hi[j].data(),
                              max_got.data(), n);
        AccumulateMinDotPlane(w[j], lo[j].data(), hi[j].data(),
                              min_got.data(), n);
      }
      for (size_t e = 0; e < n; ++e) {
        ASSERT_EQ(max_got[e], max_ref[e]) << simd::TierName(tier);
        ASSERT_EQ(min_got[e], min_ref[e]) << simd::TierName(tier);
      }
    }
  }
}

// Whole-engine sweep: identical top-k ids and scores, identical region
// constraints, identical IoStats on every tier (kernel bit-identity
// implies identical traversal decisions, so page-read counts match).
TEST(SimdDispatchTest, EngineResultsAndIoStatsIdentical) {
  TierGuard guard;
  const std::vector<simd::Tier> tiers = AvailableTiers();
  for (size_t d = 2; d <= 6; ++d) {
    for (const char* dist : kDists) {
      for (const char* sname : kScorings) {
        Dataset data = MakeDist(dist, 900, d, 2600 + d);
        Rng qrng(55 + d);
        Vec w = MakeQuery(qrng, d);

        simd::ForceTier(simd::Tier::kScalar);
        DiskManager ref_disk;
        auto ref_engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &ref_disk, MakeScoring(sname, d)));
        Result<GirComputation> ref = ref_engine->ComputeGir(w, 8,
                                                           Phase2Method::kFP);
        ASSERT_TRUE(ref.ok()) << ref.status().message();

        for (simd::Tier tier : tiers) {
          simd::ForceTier(tier);
          DiskManager disk;
          auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring(sname, d)));
          Result<GirComputation> got = engine->ComputeGir(w, 8,
                                                         Phase2Method::kFP);
          ASSERT_TRUE(got.ok()) << got.status().message();
          SCOPED_TRACE(std::string("tier=") + simd::TierName(tier) +
                       " dist=" + dist + " scoring=" + sname +
                       " d=" + std::to_string(d));
          ASSERT_EQ(got->topk.result, ref->topk.result);
          ASSERT_EQ(got->topk.scores.size(), ref->topk.scores.size());
          for (size_t i = 0; i < got->topk.scores.size(); ++i) {
            ASSERT_EQ(got->topk.scores[i], ref->topk.scores[i]);
          }
          EXPECT_EQ(got->stats.topk_reads, ref->stats.topk_reads);
          EXPECT_EQ(got->stats.phase2_reads, ref->stats.phase2_reads);
          EXPECT_EQ(got->stats.candidates, ref->stats.candidates);
          ASSERT_EQ(got->region.constraints().size(),
                    ref->region.constraints().size());
          for (size_t i = 0; i < got->region.constraints().size(); ++i) {
            const Vec& a = got->region.constraints()[i].normal;
            const Vec& b = ref->region.constraints()[i].normal;
            ASSERT_EQ(a.size(), b.size());
            ASSERT_EQ(std::memcmp(a.data(), b.data(),
                                  a.size() * sizeof(double)),
                      0);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace gir
