// GirCache / ShardedGirCache behavior: exact and partial containment
// hits, LRU eviction order, and concurrent integrity of the sharded
// variant under a multi-threaded hammer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "gir/cache.h"
#include "gir/sharded_cache.h"

namespace gir {
namespace {

// A region bounded by a single half-space normal·q >= 0 (plus the unit
// cube GirRegion always intersects with).
GirRegion HalfPlaneRegion(Vec query, Vec normal,
                          std::vector<RecordId> result) {
  const size_t dim = query.size();
  GirRegion region(dim, std::move(query), std::move(result));
  ConstraintProvenance prov;
  prov.kind = ConstraintProvenance::Kind::kOvertake;
  prov.position = 0;
  prov.challenger = 0;
  region.AddConstraint(std::move(normal), prov);
  return region;
}

// The whole unit cube: contains every valid query vector.
GirRegion CubeRegion(Vec query, std::vector<RecordId> result) {
  const size_t dim = query.size();
  return GirRegion(dim, std::move(query), std::move(result));
}

TEST(GirCacheTest, ExactHitReturnsPrefix) {
  GirCache cache(8);
  Vec q = {0.5, 0.5};
  cache.Insert(5, {11, 22, 33, 44, 55}, CubeRegion(q, {11, 22, 33, 44, 55}));
  GirCache::Lookup hit = cache.Probe(q, 3);
  EXPECT_EQ(hit.kind, GirCache::HitKind::kExact);
  EXPECT_EQ(hit.records, (std::vector<RecordId>{11, 22, 33}));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(GirCacheTest, PartialHitReturnsWholeCachedResult) {
  GirCache cache(8);
  Vec q = {0.5, 0.5};
  cache.Insert(5, {11, 22, 33, 44, 55}, CubeRegion(q, {11, 22, 33, 44, 55}));
  // Requested k exceeds the cached k: the cached records are the exact
  // first 5 of the true top-8 and come back as a kPartial prefix.
  GirCache::Lookup hit = cache.Probe(q, 8);
  EXPECT_EQ(hit.kind, GirCache::HitKind::kPartial);
  EXPECT_EQ(hit.records, (std::vector<RecordId>{11, 22, 33, 44, 55}));
  EXPECT_EQ(cache.partial_hits(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(GirCacheTest, MissOutsideRegion) {
  GirCache cache(8);
  // Region {q0 >= q1} does not contain (0.1, 0.9).
  cache.Insert(3, {1, 2, 3}, HalfPlaneRegion({0.9, 0.1}, {1.0, -1.0}, {1, 2, 3}));
  GirCache::Lookup hit = cache.Probe(Vec{0.1, 0.9}, 3);
  EXPECT_EQ(hit.kind, GirCache::HitKind::kMiss);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(GirCacheTest, LruEvictionRespectsProbeRecency) {
  GirCache cache(2);
  Vec qa = {0.9, 0.1};  // in region A = {q0 >= q1}
  Vec qb = {0.1, 0.9};  // in region B = {q1 >= q0}
  cache.Insert(1, {100}, HalfPlaneRegion(qa, {1.0, -1.0}, {100}));
  cache.Insert(1, {200}, HalfPlaneRegion(qb, {-1.0, 1.0}, {200}));
  // Touch A: it becomes MRU even though it was inserted first.
  EXPECT_EQ(cache.Probe(qa, 1).kind, GirCache::HitKind::kExact);
  // Region C = {q0 == q1}: contains neither qa nor qb, so the probes
  // below can only hit A or B.
  GirRegion c = HalfPlaneRegion({0.5, 0.5}, {1.0, -1.0}, {300});
  ConstraintProvenance prov;
  c.AddConstraint({-1.0, 1.0}, prov);
  cache.Insert(1, {300}, std::move(c));
  ASSERT_EQ(cache.size(), 2u);
  // B was LRU and must be gone; A must have survived.
  EXPECT_EQ(cache.Probe(qb, 1).kind, GirCache::HitKind::kMiss);
  GirCache::Lookup a = cache.Probe(qa, 1);
  ASSERT_EQ(a.kind, GirCache::HitKind::kExact);
  EXPECT_EQ(a.records, (std::vector<RecordId>{100}));
}

TEST(GirCacheTest, CapacityBound) {
  GirCache cache(4);
  for (int i = 0; i < 20; ++i) {
    cache.Insert(1, {i}, CubeRegion({0.5, 0.5}, {i}));
    EXPECT_LE(cache.size(), 4u);
  }
  EXPECT_EQ(cache.size(), 4u);
}

TEST(ShardedCacheTest, MatchesSingleThreadedSemantics) {
  ShardedGirCache cache(32, 4);
  Vec q = {0.5, 0.5};
  cache.Insert(5, {11, 22, 33, 44, 55}, CubeRegion(q, {11, 22, 33, 44, 55}));
  GirCache::Lookup exact = cache.Probe(q, 3);
  EXPECT_EQ(exact.kind, GirCache::HitKind::kExact);
  EXPECT_EQ(exact.records, (std::vector<RecordId>{11, 22, 33}));
  GirCache::Lookup partial = cache.Probe(q, 8);
  EXPECT_EQ(partial.kind, GirCache::HitKind::kPartial);
  EXPECT_EQ(partial.records, (std::vector<RecordId>{11, 22, 33, 44, 55}));
  GirCache::Lookup miss = cache.Probe(Vec{2.0, 2.0}, 3);  // outside cube
  EXPECT_EQ(miss.kind, GirCache::HitKind::kMiss);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.partial_hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ShardedCacheTest, ProbeScansAllShards) {
  ShardedGirCache cache(64, 8);
  // The probe vector hashes to a different home shard than the insert
  // query, so the hit must come from the cross-shard scan.
  cache.Insert(2, {7, 8}, HalfPlaneRegion({0.9, 0.1}, {1.0, -1.0}, {7, 8}));
  GirCache::Lookup hit = cache.Probe(Vec{0.8, 0.2}, 2);
  ASSERT_EQ(hit.kind, GirCache::HitKind::kExact);
  EXPECT_EQ(hit.records, (std::vector<RecordId>{7, 8}));
}

TEST(ShardedCacheTest, ExactEntryPreferredOverEarlierPartial) {
  ShardedGirCache cache(64, 8);
  std::vector<RecordId> big(20);
  for (int i = 0; i < 20; ++i) big[i] = 100 + i;
  Vec q = {0.51, 0.49, 0.5};
  // A k=20 entry exists (inserted first, under a different query vector
  // and possibly a different shard); a shorter k=5 entry sits closer to
  // the probe in scan order. The probe must still find the exact one.
  cache.Insert(20, big, CubeRegion({0.3, 0.3, 0.3}, big));
  cache.Insert(5, {1, 2, 3, 4, 5}, CubeRegion(q, {1, 2, 3, 4, 5}));
  GirCache::Lookup hit = cache.Probe(q, 10);
  ASSERT_EQ(hit.kind, GirCache::HitKind::kExact);
  EXPECT_EQ(hit.records,
            std::vector<RecordId>(big.begin(), big.begin() + 10));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.partial_hits(), 0u);
}

TEST(ShardedCacheTest, CapacitySpreadAcrossShards) {
  ShardedGirCache cache(16, 4);
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    Vec q = {rng.Uniform(), rng.Uniform()};
    // Strictly growing k defeats the covered-query insert dedupe, so
    // every insert lands and the eviction path actually runs.
    const size_t k = static_cast<size_t>(i + 1);
    std::vector<RecordId> result(k, 0);
    result[0] = i;
    cache.Insert(k, std::move(result), CubeRegion(q, {i}));
  }
  // Per-shard LRU holds every shard at ceil(16/4) = 4 entries.
  EXPECT_EQ(cache.size(), 16u);
}

// Concurrent hammer: writers insert checksummed entries while readers
// probe; any hit must return an intact (never torn or interleaved)
// record vector, and the stats must account for every probe.
TEST(ShardedCacheTest, ConcurrentHammerKeepsEntriesIntact) {
  ShardedGirCache cache(64, 8);
  const int kThreads = 4;
  const int kOpsPerThread = 400;
  std::atomic<uint64_t> probes{0};
  std::atomic<int> corrupt{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        Vec q = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
        RecordId a = static_cast<RecordId>(t * kOpsPerThread + i);
        RecordId b = static_cast<RecordId>(rng.UniformInt(1 << 20));
        // k grows within each thread, so the insert dedupe cannot
        // swallow a thread's own inserts and the shards keep churning
        // through push_front/evict under contention. result[2]
        // checksums the first two entries; the rest is filler up to the
        // declared k.
        const size_t k =
            static_cast<size_t>(3 + t + kThreads * i);  // unique, growing
        std::vector<RecordId> result(k, 0);
        result[0] = a;
        result[1] = b;
        result[2] = a + b;
        cache.Insert(k, std::move(result), CubeRegion(q, {a}));
        Vec probe = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
        GirCache::Lookup hit = cache.Probe(probe, 3);
        probes.fetch_add(1);
        if (hit.kind != GirCache::HitKind::kMiss) {
          if (hit.records.size() != 3 ||
              hit.records[2] != hit.records[0] + hit.records[1]) {
            corrupt.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(corrupt.load(), 0);
  // Far more inserts land than fit: eviction must have kept every
  // shard at its bound.
  EXPECT_EQ(cache.size(), 64u);
  EXPECT_EQ(cache.hits() + cache.partial_hits() + cache.misses(),
            probes.load());
}

}  // namespace
}  // namespace gir
