// Shared-traversal batch executor: grouped execution must be bitwise
// identical to per-query fan-out — top-k ids and scores, encountered
// and pending sets, region constraints, per-query charged IoStats —
// over dataset distributions × scoring families × every forced
// GIR_SIMD tier × cache on/off, including exact-duplicate queries
// (answered by replication). Plus: multi-weight kernel tier identity,
// amortization accounting sanity, and the zero-steady-state-allocation
// contract of the frontier arena (global operator-new counter, same
// idiom as lp_workspace_test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "dataset/generators.h"
#include "gir/batch_engine.h"
#include "topk/brs.h"

// ----- global allocation counter -----

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gir {
namespace {

// Clustered query stream with exact duplicates: every `dup_every`-th
// query repeats an archetype center verbatim (the "preset weights"
// shape of a production batch); the rest jitter around the centers.
std::vector<Vec> ClusteredWeights(size_t count, size_t dim,
                                  size_t archetypes, double jitter,
                                  size_t dup_every, Rng& rng) {
  std::vector<Vec> centers;
  for (size_t a = 0; a < archetypes; ++a) {
    Vec c(dim);
    for (size_t j = 0; j < dim; ++j) c[j] = rng.Uniform(0.05, 1.0);
    centers.push_back(std::move(c));
  }
  std::vector<Vec> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const Vec& c = centers[i % centers.size()];
    if (dup_every != 0 && i % dup_every == 0) {
      out.push_back(c);
      continue;
    }
    Vec w(dim);
    for (size_t j = 0; j < dim; ++j) {
      w[j] = std::min(1.0, std::max(0.01, c[j] + rng.Gaussian(0.0, jitter)));
    }
    out.push_back(std::move(w));
  }
  return out;
}

void ExpectSameRegion(const GirRegion& a, const GirRegion& b) {
  ASSERT_EQ(a.constraints().size(), b.constraints().size());
  for (size_t i = 0; i < a.constraints().size(); ++i) {
    const GirConstraint& ca = a.constraints()[i];
    const GirConstraint& cb = b.constraints()[i];
    EXPECT_EQ(ca.normal, cb.normal);  // bit-identical doubles
    EXPECT_EQ(ca.provenance.kind, cb.provenance.kind);
    EXPECT_EQ(ca.provenance.position, cb.provenance.position);
    EXPECT_EQ(ca.provenance.challenger, cb.provenance.challenger);
  }
}

void ExpectSameTopK(const TopKResult& a, const TopKResult& b) {
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.encountered, b.encountered);
  EXPECT_EQ(a.io.reads, b.io.reads);
  EXPECT_EQ(a.io.writes, b.io.writes);
  ASSERT_EQ(a.pending.size(), b.pending.size());
  for (size_t p = 0; p < a.pending.size(); ++p) {
    EXPECT_EQ(a.pending[p].maxscore, b.pending[p].maxscore);
    EXPECT_EQ(a.pending[p].page, b.pending[p].page);
    EXPECT_EQ(a.pending[p].mbb.lo, b.pending[p].mbb.lo);
    EXPECT_EQ(a.pending[p].mbb.hi, b.pending[p].mbb.hi);
  }
}

void ExpectSameItems(const BatchResult& fanout, const BatchResult& shared) {
  ASSERT_EQ(fanout.items.size(), shared.items.size());
  for (size_t i = 0; i < fanout.items.size(); ++i) {
    const BatchItem& a = fanout.items[i];
    const BatchItem& b = shared.items[i];
    ASSERT_EQ(a.status.ok(), b.status.ok()) << "query " << i;
    if (!a.status.ok()) continue;
    EXPECT_EQ(a.cache, b.cache) << "query " << i;
    EXPECT_EQ(a.topk, b.topk) << "query " << i;
    EXPECT_EQ(a.reads, b.reads) << "query " << i;
    ASSERT_EQ(a.computed.has_value(), b.computed.has_value()) << "query "
                                                              << i;
    if (!a.computed.has_value()) continue;
    ExpectSameTopK(a.computed->topk, b.computed->topk);
    ExpectSameRegion(a.computed->region, b.computed->region);
    EXPECT_EQ(a.computed->stats.topk_reads, b.computed->stats.topk_reads);
    EXPECT_EQ(a.computed->stats.phase2_reads,
              b.computed->stats.phase2_reads);
    EXPECT_EQ(a.computed->stats.candidates, b.computed->stats.candidates);
    EXPECT_EQ(a.computed->stats.constraints, b.computed->stats.constraints);
    EXPECT_EQ(a.computed->snapshot_version, b.computed->snapshot_version);
  }
}

Dataset MakeData(const std::string& name, size_t n, size_t dim,
                 uint64_t seed) {
  Rng rng(seed);
  Result<Dataset> d = GenerateByName(name, n, dim, rng);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

class TierGuard {
 public:
  TierGuard() : saved_(simd::ActiveTier()) {}
  ~TierGuard() { simd::ForceTier(saved_); }

 private:
  simd::Tier saved_;
};

// The tentpole property: over distributions × scorings × forced SIMD
// tiers × cache on/off, shared-traversal ComputeBatch must reproduce
// the fan-out path bit for bit (including exact-duplicate replication
// and per-query charged reads).
TEST(BatchSharedTest, SharedMatchesFanoutBitwise) {
  TierGuard guard;
  const size_t n = 900, dim = 3, k = 8;
  const std::vector<std::string> dists = {"IND", "COR", "ANTI"};
  const std::vector<std::string> scorings = {"Linear", "Polynomial", "Mixed"};
  const std::vector<simd::Tier> tiers = {
      simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2};
  Rng rng(77);
  for (const std::string& dist : dists) {
    Dataset data = MakeData(dist, n, dim, 1000 + dist.size());
    for (const std::string& scoring : scorings) {
      DiskManager disk;
      auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring(scoring, dim)));
      std::vector<Vec> weights =
          ClusteredWeights(18, dim, 5, 0.02, 6, rng);
      for (simd::Tier want : tiers) {
        if (simd::ForceTier(want) != want) continue;  // unsupported CPU
        for (bool cache_on : {false, true}) {
          BatchOptions fan_opts;
          fan_opts.threads = 2;
          fan_opts.cache_capacity = cache_on ? 64 : 0;
          // Frozen cache during the measured batch, so hit patterns
          // cannot depend on intra-batch scheduling.
          fan_opts.populate_cache = false;
          BatchOptions shared_opts = fan_opts;
          shared_opts.exec.shared_traversal = true;
          shared_opts.exec.group_width = 5;  // multiple ragged groups
          BatchEngine fanout(engine.get(), fan_opts);
          BatchEngine shared(engine.get(), shared_opts);
          if (cache_on) {
            // Identical warm state on both caches: sequential
            // computations inserted directly.
            for (size_t a = 0; a < 3; ++a) {
              Result<GirComputation> gir =
                  engine->ComputeGir(weights[a], k, Phase2Method::kFP);
              ASSERT_TRUE(gir.ok());
              fanout.mutable_cache()->Insert(k, gir->topk.result,
                                             gir->region,
                                             gir->snapshot_version);
              shared.mutable_cache()->Insert(k, gir->topk.result,
                                             gir->region,
                                             gir->snapshot_version);
            }
          }
          Result<BatchResult> a =
              fanout.ComputeBatch(weights, k, Phase2Method::kFP);
          Result<BatchResult> b =
              shared.ComputeBatch(weights, k, Phase2Method::kFP);
          ASSERT_TRUE(a.ok() && b.ok());
          SCOPED_TRACE(dist + "/" + scoring + "/" +
                       simd::TierName(want) +
                       (cache_on ? "/cache" : "/nocache"));
          ExpectSameItems(*a, *b);
          // Mode-independent aggregate accounting.
          EXPECT_EQ(a->stats.total_reads, b->stats.total_reads);
          EXPECT_EQ(b->stats.charged_reads, b->stats.total_reads);
          EXPECT_LE(b->stats.amortized_reads, b->stats.charged_reads);
        }
      }
    }
  }
}

// SP must flow through the shared path identically too (different
// Phase-2 consumer of pending/encountered).
TEST(BatchSharedTest, SharedMatchesFanoutWithSpPhase2) {
  TierGuard guard;
  Dataset data = MakeData("IND", 1200, 4, 5);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 4)));
  Rng rng(9);
  std::vector<Vec> weights = ClusteredWeights(20, 4, 4, 0.03, 5, rng);
  BatchOptions fan_opts;
  fan_opts.threads = 2;
  fan_opts.cache_capacity = 0;
  BatchOptions shared_opts = fan_opts;
  shared_opts.exec.shared_traversal = true;
  shared_opts.exec.group_width = 8;
  BatchEngine fanout(engine.get(), fan_opts);
  BatchEngine shared(engine.get(), shared_opts);
  Result<BatchResult> a = fanout.ComputeBatch(weights, 12, Phase2Method::kSP);
  Result<BatchResult> b = shared.ComputeBatch(weights, 12, Phase2Method::kSP);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectSameItems(*a, *b);
}

// Dedupe accounting: exact twins are computed once and replicated, the
// group/read bookkeeping is consistent, and overlapping traversals pay
// strictly fewer physical reads than they charge.
TEST(BatchSharedTest, DuplicateAndAmortizationAccounting) {
  Dataset data = MakeData("IND", 1500, 3, 11);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  Rng rng(13);
  // 24 queries over 4 archetypes, every 3rd an exact center repeat:
  // 8 exact duplicates beyond the first occurrences.
  std::vector<Vec> weights = ClusteredWeights(24, 3, 4, 0.01, 3, rng);
  // Dedupe is bitwise: +0.0 and -0.0 weights are numerically equal but
  // must NOT merge (their regions embed different weight vectors).
  weights.push_back(Vec{0.0, 0.5, 0.5});
  weights.push_back(Vec{-0.0, 0.5, 0.5});
  BatchOptions opts;
  opts.threads = 2;
  opts.cache_capacity = 0;
  opts.exec.shared_traversal = true;
  opts.exec.group_width = 6;
  BatchEngine shared(engine.get(), opts);
  Result<BatchResult> r = shared.ComputeBatch(weights, 10, Phase2Method::kFP);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->stats.failures, 0u);
  // Count unique weight vectors by hand, bitwise (so the ±0.0 pair
  // above counts as two).
  const auto same_bits = [](const Vec& a, const Vec& b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
  };
  std::vector<Vec> uniq;
  for (const Vec& w : weights) {
    bool seen = false;
    for (const Vec& u : uniq) seen = seen || same_bits(u, w);
    if (!seen) uniq.push_back(w);
  }
  EXPECT_EQ(r->stats.grouped_queries, uniq.size());
  EXPECT_EQ(r->stats.duplicate_hits, weights.size() - uniq.size());
  EXPECT_GT(r->stats.duplicate_hits, 0u);
  EXPECT_EQ(r->stats.shared_groups,
            (uniq.size() + opts.exec.group_width - 1) /
                opts.exec.group_width);
  // Every item answered with identical content for duplicate twins.
  for (size_t i = 0; i < weights.size(); ++i) {
    for (size_t j = i + 1; j < weights.size(); ++j) {
      if (!same_bits(weights[i], weights[j])) continue;
      EXPECT_EQ(r->items[i].topk, r->items[j].topk);
      EXPECT_EQ(r->items[i].reads, r->items[j].reads);
      ASSERT_TRUE(r->items[i].computed.has_value());
      ASSERT_TRUE(r->items[j].computed.has_value());
      ExpectSameTopK(r->items[i].computed->topk, r->items[j].computed->topk);
    }
  }
  // Clustered + duplicated queries overlap heavily: the group walk must
  // have paid strictly fewer physical reads than it charged.
  EXPECT_EQ(r->stats.charged_reads, r->stats.total_reads);
  EXPECT_LT(r->stats.amortized_reads, r->stats.charged_reads);
  EXPECT_GT(r->stats.amortized_reads, 0u);
  EXPECT_GT(r->stats.ReadAmortization(), 1.0);
}

// RunBrsMulti against solo RunBrs directly (executor-level identity,
// without the batch engine around it), on every forced tier.
TEST(BatchSharedTest, RunBrsMultiMatchesSoloRunBrs) {
  TierGuard guard;
  Dataset data = MakeData("COR", 2000, 4, 21);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Polynomial", 4)));
  const FlatRTree& flat = engine->flat_tree();
  Rng rng(31);
  std::vector<Vec> weights = ClusteredWeights(10, 4, 3, 0.02, 0, rng);
  for (simd::Tier want :
       {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::ForceTier(want) != want) continue;
    std::vector<BrsMultiQuery> queries;
    for (const Vec& w : weights) queries.push_back({VecView(w), 7});
    BrsFrontierArena arena;
    std::vector<TopKResult> multi;
    BrsMultiStats stats;
    ASSERT_TRUE(RunBrsMulti(flat, engine->scoring(), queries, &arena, &multi,
                            &stats)
                    .ok());
    uint64_t charged = 0;
    for (size_t q = 0; q < weights.size(); ++q) {
      Result<TopKResult> solo = RunBrs(flat, engine->scoring(), weights[q], 7);
      ASSERT_TRUE(solo.ok());
      SCOPED_TRACE(std::string(simd::TierName(want)) + " query " +
                   std::to_string(q));
      ExpectSameTopK(*solo, multi[q]);
      charged += solo->io.reads;
    }
    EXPECT_EQ(stats.charged_reads, charged);
    EXPECT_LE(stats.unique_reads, charged);
    EXPECT_LT(stats.unique_reads, charged);  // clustered => real sharing
  }
}

// Invalid queries fail the whole executor call up front (the batch
// engine validates before grouping, so callers see per-item statuses).
TEST(BatchSharedTest, RunBrsMultiRejectsMalformedQueries) {
  Dataset data = MakeData("IND", 200, 3, 3);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  const FlatRTree& flat = engine->flat_tree();
  Vec good(3, 0.5);
  Vec bad(2, 0.5);
  BrsFrontierArena arena;
  std::vector<TopKResult> out;
  std::vector<BrsMultiQuery> zero_k = {{VecView(good), 0}};
  EXPECT_FALSE(RunBrsMulti(flat, engine->scoring(), zero_k, &arena, &out)
                   .ok());
  std::vector<BrsMultiQuery> wrong_dim = {{VecView(bad), 5}};
  EXPECT_FALSE(RunBrsMulti(flat, engine->scoring(), wrong_dim, &arena, &out)
                   .ok());
}

// The multi-weight plane kernel is bitwise equal to the per-query Axpy
// on every dispatch tier.
TEST(BatchSharedTest, MaxDotPlaneMultiMatchesAxpyAcrossTiers) {
  TierGuard guard;
  Rng rng(41);
  const size_t m = 7, n = 53;
  std::vector<double> w(m), plane(n);
  for (double& x : w) x = rng.Uniform(0.0, 1.0);
  for (double& x : plane) x = rng.Uniform(0.0, 1.0);
  // Scalar-tier per-row reference.
  ASSERT_EQ(simd::ForceTier(simd::Tier::kScalar), simd::Tier::kScalar);
  std::vector<double> want(m * n, 0.25);
  for (size_t r = 0; r < m; ++r) {
    simd::Axpy(w[r], plane.data(), want.data() + r * n, n);
  }
  for (simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::ForceTier(t) != t) continue;
    std::vector<double> got(m * n, 0.25);
    simd::MaxDotPlaneMulti(w.data(), m, plane.data(), got.data(), n, n);
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << simd::TierName(t) << " lane " << i;
    }
  }
}

// Frontier arena: once warmed on a workload shape, repeated groups
// perform zero heap allocations (the LpWorkspace discipline), for both
// the identity transform and a transforming scoring.
TEST(BatchSharedTest, FrontierArenaZeroSteadyStateAllocation) {
  for (const char* scoring_name : {"Linear", "Polynomial"}) {
    Dataset data = MakeData("IND", 1500, 3, 17);
    DiskManager disk;
    auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring(scoring_name, 3)));
    const FlatRTree& flat = engine->flat_tree();
    Rng rng(19);
    std::vector<Vec> weights = ClusteredWeights(8, 3, 2, 0.015, 0, rng);
    std::vector<BrsMultiQuery> queries;
    for (const Vec& w : weights) queries.push_back({VecView(w), 10});
    BrsFrontierArena arena;
    std::vector<TopKResult> out;
    // Warm-up sizes every pooled buffer and the retained output.
    ASSERT_TRUE(
        RunBrsMulti(flat, engine->scoring(), queries, &arena, &out).ok());
    const size_t grow_after_warmup = arena.grow_events;
    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int rep = 0; rep < 5; ++rep) {
      Status st = RunBrsMulti(flat, engine->scoring(), queries, &arena, &out);
      if (!st.ok()) FAIL();
    }
    const uint64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u) << scoring_name;
    EXPECT_EQ(arena.grow_events, grow_after_warmup) << scoring_name;
  }
}

}  // namespace
}  // namespace gir
