// Polytope container, volume estimators and cross-module geometric
// consistency (2-D hull vs d-dim hull, exact vs Monte-Carlo).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/convex_hull.h"
#include "geom/halfspace_intersection.h"
#include "geom/hull2d.h"
#include "geom/polytope.h"
#include "geom/volume.h"

namespace gir {
namespace {

Polytope UnitTriangle() {
  std::vector<Vec> verts = {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  std::vector<Hyperplane> facets;
  facets.push_back(Hyperplane{{-1.0, 0.0}, 0.0});  // x >= 0
  facets.push_back(Hyperplane{{0.0, -1.0}, 0.0});  // y >= 0
  Hyperplane diag;
  diag.normal = {1.0, 1.0};
  diag.offset = 1.0;  // x + y <= 1
  facets.push_back(diag);
  return Polytope::FromData(2, verts, facets);
}

TEST(PolytopeTest, EmptyBasics) {
  Polytope p = Polytope::Empty(3);
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.Volume(), 0.0);
  EXPECT_FALSE(p.Contains(Vec{0.0, 0.0, 0.0}));
}

TEST(PolytopeTest, TriangleContainsAndVolume) {
  Polytope tri = UnitTriangle();
  EXPECT_TRUE(tri.Contains(Vec{0.2, 0.2}));
  EXPECT_FALSE(tri.Contains(Vec{0.8, 0.8}));
  EXPECT_TRUE(tri.Contains(Vec{0.5, 0.5}, 1e-9));  // on the boundary
  EXPECT_NEAR(tri.Volume(), 0.5, 1e-12);
  Vec c = tri.Centroid();
  EXPECT_NEAR(c[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(c[1], 1.0 / 3.0, 1e-12);
}

TEST(PolytopeTest, LowerDimensionalVertexSetHasNegligibleVolume) {
  // Four collinear "vertices": the joggled hull may report a sliver of
  // the joggle magnitude, never a real 2-volume.
  std::vector<Vec> verts = {{0.0, 0.0}, {0.3, 0.3}, {0.6, 0.6}, {1.0, 1.0}};
  Polytope p = Polytope::FromData(2, verts, {});
  EXPECT_LT(p.Volume(), 1e-6);
}

TEST(GeomConsistencyTest, Hull2DAreaMatchesGeneralHullVolume) {
  Rng rng(21);
  std::vector<Vec> pts;
  for (int i = 0; i < 150; ++i) {
    pts.push_back({rng.Uniform(), rng.Uniform()});
  }
  // Shoelace area over the 2-D hull.
  std::vector<int> h = ConvexHull2D(pts);
  double area2 = 0.0;
  for (size_t i = 0; i < h.size(); ++i) {
    const Vec& a = pts[h[i]];
    const Vec& b = pts[h[(i + 1) % h.size()]];
    area2 += a[0] * b[1] - b[0] * a[1];
  }
  double shoelace = 0.5 * std::fabs(area2);
  Result<ConvexHull> hull = ConvexHull::Build(pts);
  ASSERT_TRUE(hull.ok());
  EXPECT_NEAR(hull->Volume(), shoelace, 1e-9);
  // Vertex sets agree too.
  std::vector<int> sorted2d = h;
  std::sort(sorted2d.begin(), sorted2d.end());
  EXPECT_EQ(hull->vertex_indices(), sorted2d);
}

TEST(GeomConsistencyTest, IntersectionVolumeEqualsHullVolumeOfVertices) {
  Rng rng(22);
  for (int d = 2; d <= 5; ++d) {
    std::vector<Halfspace> ge;
    Vec q(d, 0.5);
    for (int i = 0; i < 2 * d; ++i) {
      Vec n(d);
      for (int j = 0; j < d; ++j) n[j] = rng.Uniform(-1.0, 1.0);
      if (Dot(n, q) < 0) {
        for (double& x : n) x = -x;
      }
      ge.push_back(Halfspace{std::move(n), 0.0});
    }
    Result<IntersectionResult> r = IntersectHalfspaces(ge, q);
    ASSERT_TRUE(r.ok()) << "d=" << d;
    if (r->polytope.vertices().size() < static_cast<size_t>(d + 1)) continue;
    Result<ConvexHull> hull = ConvexHull::Build(r->polytope.vertices());
    ASSERT_TRUE(hull.ok());
    EXPECT_NEAR(r->polytope.Volume(), hull->Volume(), 1e-9) << "d=" << d;
  }
}

TEST(GeomConsistencyTest, NonredundantConstraintsAreTight) {
  // Every non-redundant constraint touches the polytope (some vertex
  // lies on its hyperplane); every redundant one does not.
  Rng rng(23);
  const int d = 3;
  std::vector<Halfspace> ge;
  Vec q(d, 0.5);
  for (int i = 0; i < 12; ++i) {
    Vec n(d);
    for (int j = 0; j < d; ++j) n[j] = rng.Uniform(-1.0, 1.0);
    if (Dot(n, q) < 0) {
      for (double& x : n) x = -x;
    }
    ge.push_back(Halfspace{std::move(n), 0.0});
  }
  Result<IntersectionResult> r = IntersectHalfspaces(ge, q);
  ASSERT_TRUE(r.ok());
  std::vector<bool> nonredundant(ge.size(), false);
  for (int idx : r->nonredundant) nonredundant[idx] = true;
  for (size_t i = 0; i < ge.size(); ++i) {
    double min_slack = 1e300;
    for (const Vec& v : r->polytope.vertices()) {
      min_slack =
          std::min(min_slack, Dot(ge[i].normal, v) / Norm(ge[i].normal));
    }
    if (nonredundant[i]) {
      EXPECT_LT(min_slack, 1e-7) << "constraint " << i << " claimed tight";
    } else {
      EXPECT_GT(min_slack, -1e-9)
          << "constraint " << i << " violated by a vertex";
    }
  }
}

TEST(VolumeTest, MonteCarloBoxTightensVariance) {
  // For a small region, box-restricted MC resolves the volume with far
  // fewer samples than cube MC.
  std::vector<Halfspace> ge = {Halfspace{{1.0, -20.0}, 0.0},
                               Halfspace{{-1.0, 25.0}, 0.0}};
  Vec q = {0.9, 0.041};
  Result<IntersectionResult> r = IntersectHalfspaces(ge, q);
  ASSERT_TRUE(r.ok());
  double exact = r->polytope.Volume();
  ASSERT_GT(exact, 0.0);
  Vec lo, hi;
  ASSERT_TRUE(BoundingBox(r->polytope, &lo, &hi));
  Rng rng(5);
  double mc_box = MonteCarloVolumeInBox(ge, lo, hi, 50000, rng);
  EXPECT_NEAR(mc_box, exact, 0.1 * exact + 1e-6);
}

TEST(VolumeTest, CubeFractionOfNoConstraintsIsOne) {
  Rng rng(6);
  EXPECT_DOUBLE_EQ(MonteCarloCubeFraction({}, 3, 1000, rng), 1.0);
}

TEST(HullRobustnessTest, ManyDuplicatePoints) {
  std::vector<Vec> pts;
  Rng rng(31);
  for (int i = 0; i < 30; ++i) {
    Vec p = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    for (int rep = 0; rep < 4; ++rep) pts.push_back(p);
  }
  Result<ConvexHull> hull = ConvexHull::Build(pts);
  ASSERT_TRUE(hull.ok()) << hull.status().ToString();
  for (const Vec& p : pts) {
    EXPECT_TRUE(hull->Contains(p, 1e-6));
  }
}

TEST(HullRobustnessTest, GridDataIsHighlyDegenerate) {
  // Integer grid points: every facet fit is a tie festival; the joggle
  // machinery must cope and still enclose everything.
  std::vector<Vec> pts;
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      for (int z = 0; z < 4; ++z) {
        pts.push_back({x / 3.0, y / 3.0, z / 3.0});
      }
    }
  }
  Result<ConvexHull> hull = ConvexHull::Build(pts);
  ASSERT_TRUE(hull.ok()) << hull.status().ToString();
  EXPECT_NEAR(hull->Volume(), 1.0, 1e-4);
  for (const Vec& p : pts) {
    EXPECT_TRUE(hull->Contains(p, 1e-5));
  }
}

TEST(HullRobustnessTest, HighDimensionSmoke) {
  Rng rng(33);
  std::vector<Vec> pts;
  for (int i = 0; i < 120; ++i) {
    Vec p(8);
    for (int j = 0; j < 8; ++j) p[j] = rng.Uniform();
    pts.push_back(std::move(p));
  }
  Result<ConvexHull> hull = ConvexHull::Build(pts);
  ASSERT_TRUE(hull.ok());
  for (const Vec& p : pts) {
    EXPECT_TRUE(hull->Contains(p, 1e-6));
  }
  EXPECT_GT(hull->Volume(), 0.0);
  EXPECT_LT(hull->Volume(), 1.0);
}

}  // namespace
}  // namespace gir
