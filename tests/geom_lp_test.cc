#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/lp.h"

namespace gir {
namespace {

TEST(LpTest, Simple2DMaximum) {
  // maximize x + y s.t. x <= 1, y <= 2, x + y <= 2.5
  LpProblem lp;
  lp.a = {{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  lp.b = {1.0, 2.0, 2.5};
  lp.c = {1.0, 1.0};
  LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.5, 1e-9);
}

TEST(LpTest, NegativeRhsNeedsPhase1) {
  // maximize -x s.t. -x <= -3 (x >= 3), x <= 10 -> optimum x = 3.
  LpProblem lp;
  lp.a = {{-1.0}, {1.0}};
  lp.b = {-3.0, 10.0};
  lp.c = {-1.0};
  LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
}

TEST(LpTest, DetectsInfeasible) {
  // x <= 1 and x >= 2.
  LpProblem lp;
  lp.a = {{1.0}, {-1.0}};
  lp.b = {1.0, -2.0};
  lp.c = {1.0};
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kInfeasible);
}

TEST(LpTest, DetectsUnbounded) {
  LpProblem lp;
  lp.a = {{-1.0}};
  lp.b = {0.0};
  lp.c = {1.0};
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kUnbounded);
}

TEST(LpTest, FreeVariablesCanGoNegative) {
  // maximize -x s.t. x >= -5  (i.e. -x <= 5).
  LpProblem lp;
  lp.a = {{-1.0}};
  lp.b = {5.0};
  lp.c = {-1.0};
  LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -5.0, 1e-9);
}

TEST(LpTest, DegenerateConstraintsStillSolve) {
  // Repeated and redundant constraints around the optimum.
  LpProblem lp;
  lp.a = {{1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  lp.b = {1.0, 1.0, 1.0, 2.0, 2.0};
  lp.c = {1.0, 1.0};
  LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(ChebyshevTest, UnitSquareCenter) {
  // No extra half-spaces: largest ball in [0,1]^2 has radius 0.5.
  std::vector<Halfspace> ge;
  ge.push_back(Halfspace{{1.0, 0.0}, 0.0});  // x >= 0 (redundant w/ box)
  Result<ChebyshevResult> c = ChebyshevCenter(ge);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(c->radius, 0.5, 1e-8);
  EXPECT_NEAR(c->center[0], 0.5, 1e-6);
  EXPECT_NEAR(c->center[1], 0.5, 1e-6);
}

TEST(ChebyshevTest, HalfCube) {
  // x + y >= 1 within the unit square: largest ball centred on the
  // diagonal x+y = 1 + sqrt(2) r line.
  std::vector<Halfspace> ge = {Halfspace{{1.0, 1.0}, 1.0}};
  Result<ChebyshevResult> c = ChebyshevCenter(ge);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(c->radius, 0.2);
  // The centre satisfies the constraint with margin >= radius * |n|.
  EXPECT_GE(c->center[0] + c->center[1] - 1.0,
            c->radius * std::sqrt(2.0) - 1e-7);
}

TEST(ChebyshevTest, EmptyRegionNegativeRadius) {
  std::vector<Halfspace> ge = {Halfspace{{1.0, 0.0}, 2.0}};  // x >= 2
  Result<ChebyshevResult> c = ChebyshevCenter(ge);
  ASSERT_TRUE(c.ok());
  EXPECT_LE(c->radius, 0.0);
}

TEST(ChebyshevTest, StrictFeasibility) {
  std::vector<Halfspace> ge = {Halfspace{{1.0, 1.0}, 0.5}};
  EXPECT_TRUE(IsStrictlyFeasible(ge, 0.0, 1.0, 0.01));
  std::vector<Halfspace> tight = {Halfspace{{1.0, 1.0}, 2.0}};
  EXPECT_FALSE(IsStrictlyFeasible(tight, 0.0, 1.0, 0.01));
}

// Property: for random cones through the origin inside the unit cube,
// the Chebyshev centre is feasible with margin ~radius.
class ChebyshevPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ChebyshevPropertyTest, CenterIsDeepFeasible) {
  const int d = GetParam();
  Rng rng(77 + d);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Halfspace> ge;
    for (int i = 0; i < 6; ++i) {
      Vec n(d);
      for (int j = 0; j < d; ++j) n[j] = rng.Uniform(-0.3, 1.0);
      ge.push_back(Halfspace{std::move(n), 0.0});
    }
    Result<ChebyshevResult> c = ChebyshevCenter(ge);
    ASSERT_TRUE(c.ok());
    if (c->radius <= 0) continue;  // empty cone: nothing to verify
    for (const Halfspace& h : ge) {
      EXPECT_GE(Dot(h.normal, c->center) - h.offset,
                c->radius * Norm(h.normal) - 1e-6);
    }
    for (int j = 0; j < d; ++j) {
      EXPECT_GE(c->center[j], c->radius - 1e-6);
      EXPECT_LE(c->center[j], 1.0 - c->radius + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, ChebyshevPropertyTest,
                         ::testing::Values(2, 3, 4, 5, 6));

}  // namespace
}  // namespace gir
