// Degradation contract under storage faults and malformed queries,
// across forced SIMD tiers: faults surface as explicit Status values at
// every layer (solo ComputeGir, shared-traversal RunBrsMulti,
// BatchEngine with retries), healthy queries in a faulted group are
// bit-identical to a fault-free run, retries salvage transient faults
// within the deadline budget, and exhausted budgets degrade to terminal
// kUnavailable items — never silent drops or wrong answers.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "dataset/generators.h"
#include "gir/batch_engine.h"
#include "gir/engine.h"
#include "storage/disk_manager.h"
#include "storage/fault_injector.h"
#include "topk/scoring.h"

namespace gir {
namespace {

constexpr uint64_t kDataSeed = 404;
constexpr size_t kDim = 3;
constexpr size_t kK = 8;

class TierGuard {
 public:
  TierGuard() : saved_(simd::ActiveTier()) {}
  ~TierGuard() { simd::ForceTier(saved_); }

 private:
  simd::Tier saved_;
};

Dataset FreshData(size_t n = 400) {
  Rng rng(kDataSeed);
  auto data = GenerateByName("IND", n, kDim, rng);
  EXPECT_TRUE(data.ok());
  return std::move(*data);
}

std::vector<Vec> SpreadWeights(size_t m) {
  std::vector<Vec> weights;
  Rng rng(777);
  for (size_t i = 0; i < m; ++i) {
    Vec w(kDim);
    double sum = 0.0;
    for (size_t j = 0; j < kDim; ++j) {
      w[j] = 0.05 + rng.Uniform();
      sum += w[j];
    }
    for (size_t j = 0; j < kDim; ++j) w[j] /= sum;
    weights.push_back(std::move(w));
  }
  return weights;
}

TEST(ErrorPathTest, SoloComputeSurfacesInjectedFaultAsUnavailable) {
  Dataset data = FreshData();
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", kDim)));

  FaultPlan plan;
  plan.seed = 8;
  plan.read_error_rate = 1.0;
  FaultInjector fi(plan);
  disk.AttachFaultInjector(&fi);
  const Vec w = {0.5, 0.3, 0.2};
  auto gir = engine->ComputeGir(w, kK, Phase2Method::kFP);
  ASSERT_FALSE(gir.ok());
  EXPECT_EQ(gir.status().code(), StatusCode::kUnavailable);

  // Detach: the engine is healthy again, no residual state.
  disk.AttachFaultInjector(nullptr);
  EXPECT_TRUE(engine->ComputeGir(w, kK, Phase2Method::kFP).ok());
}

TEST(ErrorPathTest, NonFiniteWeightsAreInvalidArgumentEverywhere) {
  Dataset data = FreshData(200);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", kDim)));

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const Vec& bad :
       {Vec{0.5, nan, 0.2}, Vec{inf, 0.3, 0.2}, Vec{0.5, 0.3, -inf}}) {
    auto gir = engine->ComputeGir(bad, kK, Phase2Method::kFP);
    ASSERT_FALSE(gir.ok());
    EXPECT_EQ(gir.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(gir.status().message().find("dimension"), std::string::npos);
  }

  // Through both batch paths: the poisoned item fails alone, its
  // neighbors are served normally.
  for (bool shared : {false, true}) {
    SCOPED_TRACE(shared ? "shared" : "fanout");
    BatchOptions opts;
    opts.threads = 2;
    opts.cache_capacity = 0;
    opts.exec.shared_traversal = shared;
    BatchEngine batch(engine.get(), opts);
    std::vector<Vec> weights = SpreadWeights(4);
    weights[2][1] = nan;
    auto result = batch.ComputeBatch(weights, kK, Phase2Method::kFP);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->items.size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
      if (i == 2) {
        EXPECT_EQ(result->items[i].status.code(),
                  StatusCode::kInvalidArgument);
        EXPECT_TRUE(result->items[i].topk.empty());
      } else {
        ASSERT_TRUE(result->items[i].status.ok()) << "item " << i;
        auto want = engine->ComputeGir(weights[i], kK, Phase2Method::kFP);
        ASSERT_TRUE(want.ok());
        EXPECT_EQ(result->items[i].topk, want->topk.result);
      }
    }
    EXPECT_EQ(result->stats.failures, 1u);
  }
}

TEST(ErrorPathTest, SharedTraversalDegradesOnlyFaultedQueries) {
  TierGuard guard;
  Dataset data = FreshData();
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", kDim)));
  const std::vector<Vec> weights = SpreadWeights(12);
  std::vector<BrsMultiQuery> queries;
  for (const Vec& w : weights) queries.push_back({VecView(w), kK});

  for (simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::ForceTier(tier) != tier) continue;  // unsupported CPU
    SCOPED_TRACE(simd::TierName(tier));
    GirEngine::PinnedIndex pin = engine->PinIndex();

    BrsFrontierArena arena;
    std::vector<TopKResult> want;
    BrsMultiStats clean_stats;
    ASSERT_TRUE(RunBrsMulti(*pin.flat, engine->scoring(), queries, &arena,
                            &want, &clean_stats)
                    .ok());
    ASSERT_GE(clean_stats.unique_reads, 3u);

    // Property sweep: kill exactly one page fetch at every position of
    // the (deterministic, single-threaded) op sequence. Whatever the
    // fault hits, only its demanders may degrade; everyone else must be
    // bit-identical to the fault-free run. At least one position must
    // split the group (partial failure) or containment proved nothing.
    bool saw_partial = false;
    for (uint64_t pos = 1; pos < clean_stats.unique_reads; ++pos) {
      SCOPED_TRACE("fault at read " + std::to_string(pos));
      FaultPlan plan;
      plan.seed = 21;
      plan.read_error_rate = 1.0;
      plan.skip_ops = pos;
      plan.max_faults = 1;
      FaultInjector fi(plan);
      disk.AttachFaultInjector(&fi);
      BrsMultiStats stats;
      std::vector<TopKResult> got;
      std::vector<Status> statuses;
      Status st = RunBrsMulti(*pin.flat, engine->scoring(), queries, &arena,
                              &got, &stats, &statuses);
      disk.AttachFaultInjector(nullptr);

      // With a fault sink, the call succeeds and reports per-query
      // status.
      ASSERT_TRUE(st.ok());
      ASSERT_EQ(statuses.size(), queries.size());
      ASSERT_EQ(stats.read_faults, 1u);
      size_t failed = 0;
      for (size_t i = 0; i < queries.size(); ++i) {
        if (!statuses[i].ok()) {
          EXPECT_EQ(statuses[i].code(), StatusCode::kUnavailable);
          EXPECT_TRUE(got[i].result.empty());
          ++failed;
          continue;
        }
        // Healthy members are bit-identical to the fault-free run.
        EXPECT_EQ(got[i].result, want[i].result) << "query " << i;
        EXPECT_EQ(got[i].scores, want[i].scores) << "query " << i;
        EXPECT_EQ(got[i].io.reads, want[i].io.reads) << "query " << i;
      }
      EXPECT_GE(failed, 1u);
      saw_partial |= failed < queries.size();
    }
    EXPECT_TRUE(saw_partial);

    // Root-fetch fault without a sink: the whole call fails (legacy
    // all-or-nothing contract).
    FaultPlan root_plan;
    root_plan.seed = 21;
    root_plan.read_error_rate = 1.0;
    root_plan.max_faults = 1;
    FaultInjector fi(root_plan);
    disk.AttachFaultInjector(&fi);
    BrsMultiStats stats;
    std::vector<TopKResult> got;
    Status all = RunBrsMulti(*pin.flat, engine->scoring(), queries, &arena,
                             &got, &stats);
    disk.AttachFaultInjector(nullptr);
    EXPECT_FALSE(all.ok());
    EXPECT_EQ(all.code(), StatusCode::kUnavailable);
  }
}

TEST(ErrorPathTest, BatchRetriesSalvageTransientFaults) {
  TierGuard guard;
  Dataset data = FreshData();
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", kDim)));
  const std::vector<Vec> weights = SpreadWeights(8);

  for (simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::ForceTier(tier) != tier) continue;  // unsupported CPU
    SCOPED_TRACE(simd::TierName(tier));
    for (bool shared : {false, true}) {
      SCOPED_TRACE(shared ? "shared" : "fanout");
      BatchOptions opts;
      opts.threads = 1;  // deterministic op ordering for the fault plan
      opts.cache_capacity = 0;
      opts.exec.shared_traversal = shared;
      opts.exec.max_retries = 3;
      opts.exec.retry_backoff_ms = 0.01;
      BatchEngine batch(engine.get(), opts);

      auto clean = batch.ComputeBatch(weights, kK, Phase2Method::kFP);
      ASSERT_TRUE(clean.ok());

      // One transient fault: the first read of some attempt fails, every
      // retry thereafter sees a healthy device.
      FaultPlan plan;
      plan.seed = 13;
      plan.read_error_rate = 1.0;
      plan.max_faults = 1;
      FaultInjector fi(plan);
      disk.AttachFaultInjector(&fi);
      auto faulted = batch.ComputeBatch(weights, kK, Phase2Method::kFP);
      disk.AttachFaultInjector(nullptr);

      ASSERT_TRUE(faulted.ok());
      EXPECT_EQ(faulted->stats.failures, 0u);
      EXPECT_GE(faulted->stats.fault_retries, 1u);
      EXPECT_GE(faulted->stats.retry_successes, 1u);
      EXPECT_EQ(faulted->stats.unavailable, 0u);
      for (size_t i = 0; i < weights.size(); ++i) {
        ASSERT_TRUE(faulted->items[i].status.ok()) << "item " << i;
        EXPECT_EQ(faulted->items[i].topk, clean->items[i].topk)
            << "item " << i;
      }
    }
  }
}

TEST(ErrorPathTest, ExhaustedRetryBudgetDegradesExplicitly) {
  Dataset data = FreshData(200);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", kDim)));
  const std::vector<Vec> weights = SpreadWeights(6);

  for (bool shared : {false, true}) {
    SCOPED_TRACE(shared ? "shared" : "fanout");
    BatchOptions opts;
    opts.threads = 2;
    opts.cache_capacity = 0;
    opts.exec.shared_traversal = shared;
    opts.exec.max_retries = 2;
    opts.exec.retry_backoff_ms = 0.01;
    BatchEngine batch(engine.get(), opts);

    FaultPlan plan;  // a dead device: every read fails, forever
    plan.seed = 3;
    plan.read_error_rate = 1.0;
    FaultInjector fi(plan);
    disk.AttachFaultInjector(&fi);
    auto result = batch.ComputeBatch(weights, kK, Phase2Method::kFP);
    disk.AttachFaultInjector(nullptr);

    ASSERT_TRUE(result.ok());  // the *call* survives; items degrade
    EXPECT_EQ(result->stats.failures, weights.size());
    EXPECT_EQ(result->stats.unavailable, weights.size());
    for (const BatchItem& item : result->items) {
      EXPECT_EQ(item.status.code(), StatusCode::kUnavailable);
      EXPECT_TRUE(item.topk.empty());
      EXPECT_EQ(item.retries, 2u);  // budget fully spent, then terminal
    }
    EXPECT_EQ(result->stats.fault_retries, 2u * weights.size());
    EXPECT_EQ(result->stats.retry_successes, 0u);
  }
}

TEST(ErrorPathTest, DeadlineBudgetSuppressesRetries) {
  Dataset data = FreshData(200);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", kDim)));
  const std::vector<Vec> weights = SpreadWeights(4);

  for (bool shared : {false, true}) {
    SCOPED_TRACE(shared ? "shared" : "fanout");
    BatchOptions opts;
    opts.threads = 1;
    opts.cache_capacity = 0;
    opts.exec.shared_traversal = shared;
    opts.exec.max_retries = 5;
    opts.exec.retry_backoff_ms = 50.0;  // any retry would blow the budget
    BatchEngine batch(engine.get(), opts);

    FaultPlan plan;
    plan.seed = 3;
    plan.read_error_rate = 1.0;
    FaultInjector fi(plan);
    disk.AttachFaultInjector(&fi);
    ExecPolicy policy = opts.exec;
    policy.deadline_ms = 5.0;  // smaller than one backoff step
    auto result =
        batch.ComputeBatch(weights, kK, Phase2Method::kFP, policy);
    disk.AttachFaultInjector(nullptr);

    // Degradation is immediate and explicit: no retry can fit the
    // budget, so no 50 ms sleeps happen and every item is terminal.
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->stats.fault_retries, 0u);
    EXPECT_EQ(result->stats.unavailable, weights.size());
    for (const BatchItem& item : result->items) {
      EXPECT_EQ(item.status.code(), StatusCode::kUnavailable);
      EXPECT_EQ(item.retries, 0u);
    }
  }
}

// ----- API-boundary validation (ExecPolicy / EngineConfig) -----
// Malformed knobs fail fast and by name with kInvalidArgument, before
// any query runs: a NaN deadline would silently disable deadline
// accounting, a zero group width can make no shared-traversal
// progress, and a "negative" retry budget arrives as a huge size_t.

TEST(PolicyValidationTest, MalformedExecPolicyIsInvalidArgument) {
  Dataset data = FreshData();
  DiskManager disk;
  auto engine = OpenEngineOrDie(EngineConfig::FromDataset(
      &data, &disk, MakeScoring("Linear", kDim)));
  BatchEngine batch(engine.get(), BatchOptions{});
  const auto weights = SpreadWeights(2);

  const auto expect_invalid = [&](const ExecPolicy& policy) {
    auto result = batch.ComputeBatch(weights, kK, Phase2Method::kFP, policy);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  };

  ExecPolicy p;
  p.deadline_ms = std::numeric_limits<double>::quiet_NaN();
  expect_invalid(p);
  p = ExecPolicy{};
  p.deadline_ms = -5.0;
  expect_invalid(p);
  p = ExecPolicy{};
  p.retry_backoff_ms = -0.5;
  expect_invalid(p);
  p = ExecPolicy{};
  p.retry_backoff_ms = std::numeric_limits<double>::infinity();
  expect_invalid(p);
  p = ExecPolicy{};
  p.hedge_delay_ms = -1.0;
  expect_invalid(p);
  p = ExecPolicy{};
  p.shared_traversal = true;
  p.group_width = 0;
  expect_invalid(p);
  p = ExecPolicy{};
  p.max_retries = static_cast<size_t>(-3);  // careless signed conversion
  expect_invalid(p);

  // The documented baseline passes, and so does an unshared zero
  // width (the knob is inert without shared traversal).
  EXPECT_TRUE(ValidateExecPolicy(ExecPolicy{}).ok());
  p = ExecPolicy{};
  p.group_width = 0;
  auto ok = batch.ComputeBatch(weights, kK, Phase2Method::kFP, p);
  ASSERT_TRUE(ok.ok());
}

TEST(PolicyValidationTest, EngineConfigFileSourcesNeedAPath) {
  DiskManager disk;
  for (auto make : {&EngineConfig::FromCsv, &EngineConfig::FromSnapshotDir,
                    &EngineConfig::FromArena}) {
    auto engine = GirEngine::Open(
        make("", &disk, MakeScoring("Linear", kDim), GirEngineOptions{}));
    ASSERT_FALSE(engine.ok());
    EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(PolicyValidationTest, PinnedEpochBehindEngineDegradesToUnavailable) {
  Dataset data = FreshData();
  DiskManager disk;
  auto engine = OpenEngineOrDie(EngineConfig::FromDataset(
      &data, &disk, MakeScoring("Linear", kDim)));
  BatchEngine batch(engine.get(), BatchOptions{});
  const auto weights = SpreadWeights(3);

  // The engine is at epoch 0; a reply pinned to epoch 3 cannot be
  // served without time travel — explicit kUnavailable items, never a
  // stale answer.
  ExecPolicy pinned;
  pinned.pin_epoch = 3;
  auto result = batch.ComputeBatch(weights, kK, Phase2Method::kFP, pinned);
  ASSERT_TRUE(result.ok());
  for (const BatchItem& item : result->items) {
    EXPECT_EQ(item.status.code(), StatusCode::kUnavailable);
  }

  // Advance past the pin; the same policy now serves normally.
  ASSERT_TRUE(engine->ApplyUpdates(UpdateBatch{{{0.4, 0.4, 0.4}}, {}}).ok());
  ASSERT_TRUE(engine->ApplyUpdates(UpdateBatch{{{0.5, 0.2, 0.6}}, {}}).ok());
  ASSERT_TRUE(engine->ApplyUpdates(UpdateBatch{{{0.3, 0.7, 0.1}}, {}}).ok());
  result = batch.ComputeBatch(weights, kK, Phase2Method::kFP, pinned);
  ASSERT_TRUE(result.ok());
  for (const BatchItem& item : result->items) {
    EXPECT_TRUE(item.status.ok()) << item.status.message();
  }
}

}  // namespace
}  // namespace gir
