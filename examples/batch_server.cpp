// Batch GIR server scenario: a front-end accumulates user top-k
// requests into ticks and hands each tick to BatchEngine, which fans
// the queries across a thread pool and serves repeat preferences from
// the sharded GIR cache without touching the R-tree. The cache persists
// across ticks, so the serving cost drops as the preference clusters
// get covered — the paper's result-caching application at batch scale.
#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/batch_engine.h"

int main() {
  using namespace gir;
  const size_t n = 40000;
  const size_t d = 3;
  const size_t k = 10;
  Rng rng(2014);
  Dataset data = GenerateCorrelated(n, d, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));

  BatchOptions options;
  options.threads = 4;
  options.cache_capacity = 512;
  options.cache_shards = 8;
  BatchEngine server(engine.get(), options);

  // Preference archetypes with per-user jitter: "quality seeker",
  // "bargain hunter", ... — the clustered traffic a recommender sees.
  std::vector<Vec> archetypes = {
      {0.9, 0.3, 0.4}, {0.2, 0.8, 0.5}, {0.5, 0.5, 0.5}, {0.3, 0.4, 0.9}};
  const double jitter = 0.02;

  const int ticks = 6;
  const size_t batch_size = 128;
  std::printf("batch server: %zu workers, cache %zu GIRs x %zu shards, "
              "%zu queries/tick\n\n",
              server.threads(), options.cache_capacity, options.cache_shards,
              batch_size);
  std::printf("%-6s %10s %10s %10s %10s %10s %10s\n", "tick", "wall_ms",
              "qps", "hit_rate", "p50_ms", "p99_ms", "reads");

  for (int tick = 0; tick < ticks; ++tick) {
    std::vector<Vec> batch;
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      const Vec& base = archetypes[rng.UniformInt(archetypes.size())];
      Vec q(d);
      for (size_t j = 0; j < d; ++j) {
        q[j] = std::clamp(base[j] + rng.Gaussian(0.0, jitter), 0.01, 1.0);
      }
      batch.push_back(std::move(q));
    }
    Result<BatchResult> r = server.ComputeBatch(batch, k, Phase2Method::kFP);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6d %10.2f %10.0f %9.1f%% %10.3f %10.3f %10llu\n", tick,
                r->stats.wall_ms, r->stats.QueriesPerSecond(),
                100.0 * r->stats.HitRate(), r->stats.p50_ms, r->stats.p99_ms,
                static_cast<unsigned long long>(r->stats.total_reads));
  }

  const ShardedGirCache& cache = server.cache();
  std::printf("\ncache after %d ticks: %zu resident GIRs, %llu exact hits, "
              "%llu partial, %llu misses\n",
              ticks, cache.size(),
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.partial_hits()),
              static_cast<unsigned long long>(cache.misses()));
  std::printf("a cache hit returns the full ranked top-%zu with zero index "
              "I/O and zero GIR computation\n", k);
  return 0;
}
