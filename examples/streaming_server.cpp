// Streaming server scenario: a live catalog under mixed traffic. An
// update stream keeps mutating the dataset (new listings arrive, stale
// ones are delisted) interleaved with bursts of clustered top-k
// preferences — the epoch lifecycle end to end, narrated sequentially
// (tests/update_stress_test.cc is the concurrent version of this
// workload):
//
//   mutate    ApplyUpdates edits the R*-tree + dataset (tombstones)
//   refreeze  the tree is frozen into a fresh immutable snapshot
//   swap      readers atomically pick up the new epoch, in-flight
//             queries finish on the old one untouched
//
// Between epochs the sharded GIR cache is invalidated *incrementally*:
// one small LP per (cached region, inserted point) decides whether the
// insert can pierce the region's top-k anywhere; deletes only kill
// entries that contain the deleted record. Surviving entries keep
// serving across the swap — watch the hit rate stay high while the
// catalog churns.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/batch_engine.h"

int main() {
  using namespace gir;
  const size_t n = 30000;
  const size_t d = 3;
  const size_t k = 10;
  Rng rng(2014);
  Dataset data = GenerateIndependent(n, d, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));

  BatchOptions options;
  options.threads = 4;
  options.cache_capacity = 256;
  BatchEngine server(engine.get(), options);

  // Clustered preferences, as in batch_server.
  std::vector<Vec> archetypes = {
      {0.9, 0.3, 0.4}, {0.2, 0.8, 0.5}, {0.5, 0.5, 0.5}, {0.3, 0.4, 0.9}};
  auto draw_queries = [&](size_t count) {
    std::vector<Vec> qs;
    for (size_t i = 0; i < count; ++i) {
      const Vec& base = archetypes[rng.UniformInt(archetypes.size())];
      Vec q(d);
      for (size_t j = 0; j < d; ++j) {
        q[j] = std::clamp(base[j] + rng.Gaussian(0.0, 0.02), 0.01, 1.0);
      }
      qs.push_back(std::move(q));
    }
    return qs;
  };

  // Warm the cache before the churn starts.
  if (!server.ComputeBatch(draw_queries(128), k, Phase2Method::kFP).ok()) {
    return 1;
  }

  std::vector<RecordId> live;
  for (size_t i = 0; i < n; ++i) live.push_back(static_cast<RecordId>(i));

  const int epochs = 6;
  const size_t churn = 64;  // listings added and delisted per epoch
  std::printf("streaming server: %zu records, %zu-way churn per epoch, "
              "%zu cached GIRs warm\n\n",
              n, churn, server.cache().size());
  std::printf("%-6s %10s %10s %10s %8s %8s %8s %10s %8s\n", "epoch",
              "apply_ms", "freeze_ms", "inval_ms", "tests", "evict", "keep",
              "qps", "hit");

  for (int epoch = 1; epoch <= epochs; ++epoch) {
    UpdateBatch batch;
    for (size_t i = 0; i < churn; ++i) {
      Vec p(d);
      for (double& x : p) x = rng.Uniform();
      batch.inserts.push_back(std::move(p));
    }
    for (size_t i = 0; i < churn && !live.empty(); ++i) {
      size_t at = static_cast<size_t>(rng.UniformInt(live.size()));
      batch.deletes.push_back(live[at]);
      live[at] = live.back();
      live.pop_back();
    }
    Result<UpdateStats> up = server.ApplyUpdates(batch);
    if (!up.ok()) {
      std::fprintf(stderr, "%s\n", up.status().ToString().c_str());
      return 1;
    }
    for (size_t i = data.size() - churn; i < data.size(); ++i) {
      live.push_back(static_cast<RecordId>(i));
    }

    Result<BatchResult> r =
        server.ComputeBatch(draw_queries(128), k, Phase2Method::kFP);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6d %10.2f %10.2f %10.2f %8llu %8llu %8llu %10.0f %7.1f%%\n",
                epoch, up->apply_ms, up->refreeze_ms, up->invalidate_ms,
                static_cast<unsigned long long>(up->cache_lp_tests),
                static_cast<unsigned long long>(up->cache_stale_evicted +
                                                up->cache_delete_evicted +
                                                up->cache_insert_evicted),
                static_cast<unsigned long long>(up->cache_survived),
                r->stats.QueriesPerSecond(), 100.0 * r->stats.HitRate());
  }

  std::printf("\nafter %d epochs: dataset %zu slots (%zu live), epoch %llu, "
              "%zu cached GIRs resident\n",
              epochs, data.size(), data.live_size(),
              static_cast<unsigned long long>(engine->dataset_version()),
              server.cache().size());
  std::printf("every served result was computed against — or proven "
              "immutable across — the epoch it was returned in\n");
  return 0;
}
