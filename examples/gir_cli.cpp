// Command-line GIR tool: load a numeric CSV (or generate a demo file),
// run a top-k query, and print the result, its immutable weight ranges,
// the boundary events and the robustness score.
//
//   ./gir_cli --data=records.csv --weights=0.6,0.5,0.6,0.7 --k=10
//   ./gir_cli                       # self-contained demo run
//
// Flags: --data, --weights (comma list; default: uniform), --k,
//        --method (FP|SP|CP|BF), --star (order-insensitive GIR*).
#include <cstdio>
#include <cstdlib>

#include "common/flags.h"
#include "common/rng.h"
#include "dataset/csv.h"
#include "dataset/generators.h"
#include "gir/engine.h"
#include "gir/sensitivity.h"
#include "gir/visualization.h"

namespace {

gir::Result<gir::Vec> ParseWeights(const std::string& spec, size_t dim) {
  if (spec.empty()) return gir::Vec(dim, 0.5);
  gir::Vec w;
  std::string cell;
  for (char c : spec + ",") {
    if (c == ',') {
      if (!cell.empty()) {
        char* end = nullptr;
        double v = std::strtod(cell.c_str(), &end);
        if (end == cell.c_str() || *end != '\0') {
          return gir::Status::InvalidArgument("bad weight: " + cell);
        }
        w.push_back(v);
        cell.clear();
      }
    } else {
      cell.push_back(c);
    }
  }
  if (w.size() != dim) {
    return gir::Status::InvalidArgument("expected " + std::to_string(dim) +
                                        " weights");
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gir;
  FlagSet flags;
  std::string data_path;
  std::string weight_spec;
  std::string method_name = "FP";
  int64_t k = 10;
  bool star = false;
  flags.AddString("data", &data_path, "numeric CSV file (empty: demo data)");
  flags.AddString("weights", &weight_spec, "comma-separated query weights");
  flags.AddString("method", &method_name, "Phase-2 method: FP|SP|CP|BF");
  flags.AddInt("k", &k, "result size");
  flags.AddBool("star", &star, "compute order-insensitive GIR*");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;

  if (data_path.empty()) {
    // Self-contained demo: write a CSV and read it back, exercising the
    // same path a user's file would take.
    data_path = "/tmp/gir_cli_demo.csv";
    Rng rng(1);
    Dataset demo = GenerateIndependent(5000, 4, rng);
    Status ws = WriteCsvDataset(demo, data_path);
    if (!ws.ok()) {
      std::fprintf(stderr, "%s\n", ws.ToString().c_str());
      return 1;
    }
    std::printf("(no --data given: wrote demo dataset to %s)\n",
                data_path.c_str());
  }

  Result<Dataset> data = LoadCsvDataset(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "loading %s failed: %s\n", data_path.c_str(),
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu records x %zu attributes from %s\n", data->size(),
              data->dim(), data_path.c_str());

  Result<Vec> w = ParseWeights(weight_spec, data->dim());
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }
  Result<Phase2Method> method = ParsePhase2Method(method_name);
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
    return 1;
  }

  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&*data, &disk, MakeScoring("Linear", data->dim())));
  Result<GirComputation> gir =
      star ? engine->ComputeGirStar(*w, k, *method)
           : engine->ComputeGir(*w, k, *method);
  if (!gir.ok()) {
    std::fprintf(stderr, "%s\n", gir.status().ToString().c_str());
    return 1;
  }

  std::printf("\ntop-%lld (%s%s):\n", static_cast<long long>(k),
              method_name.c_str(), star ? ", order-insensitive" : "");
  for (size_t i = 0; i < gir->topk.result.size(); ++i) {
    std::printf("  %2zu. row %d (score %.5f)\n", i + 1, gir->topk.result[i],
                gir->topk.scores[i]);
  }
  std::vector<WeightRange> lirs = ComputeLirs(gir->region);
  std::printf("\nimmutable weight ranges:\n");
  for (size_t j = 0; j < lirs.size(); ++j) {
    std::printf("  w%zu = %.3f in [%.4f, %.4f]\n", j + 1, (*w)[j],
                lirs[j].lo, lirs[j].hi);
  }
  Rng mc(3);
  std::printf("\nrobustness: volume ratio %.3e, STB radius %.4f\n",
              VolumeRatioAuto(gir->region, mc), StbRadius(gir->region));
  std::printf("boundary events:\n");
  for (const BoundaryEvent& e : gir->region.BoundaryEvents()) {
    std::printf("  - %s\n", e.description.c_str());
  }
  return 0;
}
