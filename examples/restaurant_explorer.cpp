// The paper's motivating scenario (§1): a restaurant-recommendation
// service where users weigh food quality, ambience, value-for-money and
// service. The example mimics an interactive session:
//
//   * a user asks for a top-10 with her weight vector,
//   * the GIR provides the slide-bar marks of Figure 1(a) — how far
//     each weight can move without changing the recommendation,
//   * she drags one slider inside its range; the marks are re-projected
//     on the fly (§7.3 interactive projection) and the result provably
//     stays the same,
//   * she then drags past the mark and sees exactly the perturbation
//     the boundary event predicted.
#include <cstdio>

#include <algorithm>

#include "common/rng.h"
#include "dataset/dataset.h"
#include "gir/engine.h"
#include "gir/visualization.h"

namespace {

// A synthetic city of restaurants: four average ratings per venue with
// a quality factor so that good food correlates with good service.
gir::Dataset MakeRestaurants(size_t n, gir::Rng& rng) {
  gir::Dataset data(4);
  data.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double quality = rng.Uniform();
    gir::Vec venue(4);
    venue[0] = std::clamp(quality + rng.Gaussian(0.0, 0.15), 0.0, 1.0);
    venue[1] = std::clamp(0.5 * quality + rng.Uniform() * 0.5, 0.0, 1.0);
    venue[2] = std::clamp(1.0 - 0.4 * quality + rng.Gaussian(0.0, 0.2),
                          0.0, 1.0);  // value anti-correlates with quality
    venue[3] = std::clamp(quality + rng.Gaussian(0.0, 0.2), 0.0, 1.0);
    data.Append(venue);
  }
  return data;
}

const char* kFactor[4] = {"food quality", "ambience", "value", "service"};

void PrintSlideBars(const gir::Vec& w,
                    const std::vector<gir::WeightRange>& lirs) {
  for (int j = 0; j < 4; ++j) {
    std::printf("  %-12s %.2f  immutable range [%.3f, %.3f]\n", kFactor[j],
                w[j], lirs[j].lo, lirs[j].hi);
  }
}

}  // namespace

int main() {
  using namespace gir;
  Rng rng(42);
  Dataset restaurants = MakeRestaurants(50000, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&restaurants, &disk, MakeScoring("Linear", 4)));

  // The user's weights, scaled from Figure 1's 0-100 sliders.
  Vec w = {0.60, 0.50, 0.60, 0.70};
  const size_t k = 10;
  Result<GirComputation> gir = engine->ComputeGir(w, k, Phase2Method::kFP);
  if (!gir.ok()) {
    std::fprintf(stderr, "%s\n", gir.status().ToString().c_str());
    return 1;
  }
  std::printf("top-%zu restaurants for your weights:\n", k);
  for (size_t i = 0; i < k; ++i) {
    std::printf("  %2zu. venue #%d (score %.3f)\n", i + 1,
                gir->topk.result[i], gir->topk.scores[i]);
  }

  std::printf("\nslide-bar marks (result provably unchanged inside):\n");
  std::vector<WeightRange> lirs = ComputeLirs(gir->region);
  PrintSlideBars(w, lirs);

  // Drag "ambience" to the middle of its allowed range.
  Vec w2 = w;
  w2[1] = 0.5 * (lirs[1].lo + lirs[1].hi);
  std::printf("\nuser drags ambience to %.3f (inside its range)...\n",
              w2[1]);
  Result<GirComputation> check = engine->ComputeGir(w2, k, Phase2Method::kFP);
  if (!check.ok()) return 1;
  std::printf("  recommendation unchanged: %s\n",
              check->topk.result == gir->topk.result ? "yes" : "NO (bug!)");
  std::printf("  re-projected marks at the new position:\n");
  PrintSlideBars(w2, ProjectOntoRegion(gir->region, w2));

  // Now push service past its upper mark and show the perturbation.
  double past = std::min(1.0, lirs[3].hi + 0.02);
  Vec w3 = w;
  w3[3] = past;
  std::printf("\nuser drags service past its mark to %.3f...\n", past);
  Result<GirComputation> after = engine->ComputeGir(w3, k, Phase2Method::kFP);
  if (!after.ok()) return 1;
  if (after->topk.result != gir->topk.result) {
    std::printf("  the recommendation changed, as the GIR predicted.\n");
    for (size_t i = 0; i < k; ++i) {
      if (after->topk.result[i] != gir->topk.result[i]) {
        std::printf("  first difference at rank %zu: #%d -> #%d\n", i + 1,
                    gir->topk.result[i], after->topk.result[i]);
        break;
      }
    }
  } else {
    std::printf("  still unchanged (the crossing facet was a reorder of "
                "lower ranks).\n");
  }

  std::printf("\nboundary events on this GIR (the \"what happens next\" "
              "preview of Figure 1(b)):\n");
  for (const BoundaryEvent& e : gir->region.BoundaryEvents()) {
    std::printf("  - %s\n", e.description.c_str());
  }
  return 0;
}
