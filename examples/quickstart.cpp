// Quickstart: compute a top-k result and its Global Immutable Region.
//
//   $ ./quickstart
//
// Builds a small synthetic dataset, runs a top-10 query, derives the
// GIR with Facet Pruning, and prints the region's boundary events (what
// the result becomes if a weight crosses each facet).
#include <cstdio>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/engine.h"
#include "gir/sensitivity.h"
#include "gir/visualization.h"

int main() {
  using namespace gir;

  // 1. Data: 20,000 records with 4 attributes in [0,1].
  Rng rng(2014);
  Dataset data = GenerateIndependent(20000, 4, rng);

  // 2. Engine: builds an R*-tree over the data on a simulated disk.
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 4)));

  // 3. A user preference vector (weights per attribute) and k.
  Vec weights = {0.60, 0.50, 0.60, 0.70};
  const size_t k = 10;

  // 4. Top-k + GIR in one call, using Facet Pruning (FP).
  Result<GirComputation> gir =
      engine->ComputeGir(weights, k, Phase2Method::kFP);
  if (!gir.ok()) {
    std::fprintf(stderr, "GIR computation failed: %s\n",
                 gir.status().ToString().c_str());
    return 1;
  }

  std::printf("top-%zu result (record id : score):\n", k);
  for (size_t i = 0; i < gir->topk.result.size(); ++i) {
    std::printf("  %2zu. #%d : %.4f\n", i + 1, gir->topk.result[i],
                gir->topk.scores[i]);
  }

  // 5. The GIR: all weight settings with the exact same ordered result.
  std::printf("\nGIR: %zu constraints (%zu non-redundant facets)\n",
              gir->region.constraints().size(),
              gir->region.nonredundant_indices().size());
  Rng mc(1);
  std::printf("robustness (GIR volume / query-space volume): %.3e\n",
              VolumeRatioAuto(gir->region, mc));

  // 6. Per-weight immutable ranges (the slide-bar marks of Figure 1).
  std::printf("\nper-weight immutable ranges:\n");
  std::vector<WeightRange> lirs = ComputeLirs(gir->region);
  for (size_t j = 0; j < lirs.size(); ++j) {
    std::printf("  w%zu = %.2f, free within [%.4f, %.4f]\n", j + 1,
                weights[j], lirs[j].lo, lirs[j].hi);
  }

  // 7. What changes at each facet of the region.
  std::printf("\nboundary events:\n");
  for (const BoundaryEvent& e : gir->region.BoundaryEvents()) {
    std::printf("  - %s\n", e.description.c_str());
  }

  std::printf("\ncost: top-k %.2f ms CPU + %llu reads; GIR %.2f ms CPU + "
              "%llu reads\n",
              gir->stats.topk_cpu_ms,
              static_cast<unsigned long long>(gir->stats.topk_reads),
              gir->stats.GirCpuMillis(),
              static_cast<unsigned long long>(gir->stats.phase2_reads));
  return 0;
}
