// Sensitivity analysis with the GIR (paper §1 + Figure 14): the ratio
// of GIR volume to query-space volume is the probability that a random
// preference vector reproduces the result — a robustness score for the
// recommendation. This example contrasts robust and fragile queries on
// datasets with different correlation structure, and shows the MAH
// (maximum axis-parallel box) as a conservative "safe zone".
#include <cstdio>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/engine.h"
#include "gir/sensitivity.h"
#include "gir/visualization.h"

int main() {
  using namespace gir;
  const size_t n = 30000;
  const size_t d = 4;
  const size_t k = 10;
  Rng rng(7);

  struct Entry {
    const char* name;
    Dataset data;
  };
  std::vector<Entry> datasets;
  datasets.push_back({"correlated (easy)", GenerateCorrelated(n, d, rng)});
  datasets.push_back({"independent", GenerateIndependent(n, d, rng)});
  datasets.push_back(
      {"anti-correlated (hard)", GenerateAnticorrelated(n, d, rng)});

  std::printf("robustness of a top-%zu result under weight perturbation\n",
              k);
  std::printf("%-24s %-12s %-12s %-10s\n", "dataset", "GIR volume",
              "MAH volume", "facets");
  for (Entry& e : datasets) {
    DiskManager disk;
    auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&e.data, &disk, MakeScoring("Linear", d)));
    Vec w = {0.6, 0.5, 0.6, 0.7};
    Result<GirComputation> gir = engine->ComputeGir(w, k, Phase2Method::kFP);
    if (!gir.ok()) {
      std::fprintf(stderr, "%s\n", gir.status().ToString().c_str());
      return 1;
    }
    Rng mc(11);
    double ratio = VolumeRatioAuto(gir->region, mc);
    MahBox mah = ComputeMah(gir->region);
    std::printf("%-24s %-12.3e %-12.3e %-10zu\n", e.name, ratio,
                mah.Volume(), gir->region.nonredundant_indices().size());
  }

  // A per-query view: the same dataset, several random users. Queries
  // whose top results are score-separated are robust; photo-finish
  // queries are fragile and would warrant a "results are sensitive to
  // your weights" warning in a UI.
  std::printf("\nper-user robustness on the independent dataset:\n");
  std::printf("%-8s %-14s %-18s %s\n", "user", "volume ratio",
              "top-1/2 score gap", "verdict");
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&datasets[1].data, &disk, MakeScoring("Linear", d)));
  for (int user = 0; user < 6; ++user) {
    Vec w(d);
    for (size_t j = 0; j < d; ++j) w[j] = rng.Uniform(0.1, 1.0);
    Result<GirComputation> gir = engine->ComputeGir(w, k, Phase2Method::kFP);
    if (!gir.ok()) continue;
    Rng mc(user);
    double ratio = VolumeRatioAuto(gir->region, mc);
    double gap = gir->topk.scores[0] - gir->topk.scores[1];
    std::printf("%-8d %-14.3e %-18.5f %s\n", user + 1, ratio, gap,
                ratio > 1e-4 ? "robust" : "sensitive — deliberate!");
  }
  return 0;
}
