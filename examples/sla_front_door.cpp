// SLA front-door scenario: a replayable Zipf/bursty traffic trace runs
// through the serving stack — admission queue with a deadline budget,
// cosine-archetype clustering that picks the shared-traversal width per
// batch, explicit shedding under overload — and the service metrics
// show what a client of the system would see at increasing load.
#include <cstdio>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/batch_engine.h"
#include "serve/replay.h"

int main() {
  using namespace gir;
  const size_t n = 30000;
  const size_t d = 3;

  serve::TrafficConfig traffic;
  traffic.seed = 2014;
  traffic.dim = d;
  traffic.k = 10;
  traffic.events = 600;
  traffic.key_pool = 6;       // six preference archetypes
  traffic.zipf_s = 1.2;       // a couple of them dominate
  traffic.jitter_prob = 0.25; // the rest personalize their weights
  traffic.burst_factor = 4.0; // rush-hour spikes over the base rate
  traffic.burst_every_ms = 300.0;
  traffic.burst_len_ms = 60.0;
  traffic.update_ratio = 0.02; // a trickle of inserts/deletes
  traffic.updates_per_batch = 6;
  traffic.initial_records = n;

  serve::ReplayOptions serving;
  serving.admission.max_batch = 32;
  serving.admission.max_wait_ms = 2.0;   // admission delay budget
  serving.admission.deadline_ms = 25.0;  // end-to-end SLA per request
  serving.admission.queue_capacity = 256;

  std::printf("SLA front door: %zu records, k=%zu, SLA %.0fms, "
              "batch<=%zu, wait<=%.0fms\n\n",
              n, traffic.k, serving.admission.deadline_ms,
              serving.admission.max_batch, serving.admission.max_wait_ms);
  std::printf("%-10s %9s %9s %7s %7s %7s %7s %7s %7s\n", "load(qps)",
              "served", "shed", "p50", "p95", "p99", "width", "occup",
              "shed%");

  for (double qps : {2000.0, 6000.0, 12000.0, 24000.0}) {
    traffic.base_qps = qps;
    Result<serve::Trace> trace = serve::GenerateTrace(traffic);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 1;
    }
    // Fresh stack per load point: comparable cold starts.
    Rng rng(7);
    Dataset data = GenerateCorrelated(n, d, rng);
    DiskManager disk;
    auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
    BatchOptions options;
    options.cache_capacity = 0;
    options.exec.shared_traversal = true;
    BatchEngine server(engine.get(), options);

    Result<serve::ServiceReport> report =
        serve::ReplayTrace(*trace, &server, serving);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    const serve::ServiceMetrics& m = report->metrics;
    std::printf("%-10.0f %9llu %9llu %7.2f %7.2f %7.2f %7.1f %7.1f %6.1f%%\n",
                qps, static_cast<unsigned long long>(m.served),
                static_cast<unsigned long long>(m.shed), m.p50_ms, m.p95_ms,
                m.p99_ms, m.mean_width, m.mean_batch_occupancy,
                100.0 * m.ShedRate());
  }

  std::printf("\nEvery request ends served or explicitly shed "
              "(ResourceExhausted) — never silently dropped; results are "
              "bit-identical to direct per-query computation regardless of "
              "batching or width.\n");
  return 0;
}
