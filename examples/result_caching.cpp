// GIR-based result caching (paper §1): cache each computed top-k result
// together with its GIR; a later query whose weight vector falls inside
// a cached GIR is answered without touching the index at all. This
// example simulates a workload of users with clustered preferences
// ("archetypes" with personal jitter) and reports hit rates and saved
// I/O — the setting where GIR caching shines.
#include <cstdio>

#include <algorithm>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/cache.h"
#include "gir/engine.h"

int main() {
  using namespace gir;
  const size_t n = 40000;
  const size_t d = 3;
  const size_t k = 10;
  Rng rng(99);
  Dataset data = GenerateCorrelated(n, d, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
  GirCache cache(256);

  // Preference archetypes: "quality seeker", "bargain hunter", ...
  std::vector<Vec> archetypes = {
      {0.9, 0.3, 0.4}, {0.2, 0.8, 0.5}, {0.5, 0.5, 0.5}, {0.3, 0.4, 0.9}};

  const int queries = 400;
  uint64_t reads_with_cache = 0;
  uint64_t reads_without_cache = 0;
  int served_from_cache = 0;
  double jitter = 0.03;

  for (int i = 0; i < queries; ++i) {
    const Vec& base = archetypes[rng.UniformInt(archetypes.size())];
    Vec q(d);
    for (size_t j = 0; j < d; ++j) {
      q[j] = std::clamp(base[j] + rng.Gaussian(0.0, jitter), 0.01, 1.0);
    }
    GirCache::Lookup hit = cache.Probe(q, k);
    if (hit.kind == GirCache::HitKind::kExact) {
      ++served_from_cache;  // zero I/O, zero computation
    } else {
      Result<GirComputation> gir = engine->ComputeGir(q, k, Phase2Method::kFP);
      if (!gir.ok()) {
        std::fprintf(stderr, "%s\n", gir.status().ToString().c_str());
        return 1;
      }
      reads_with_cache += gir->stats.topk_reads + gir->stats.phase2_reads;
      cache.Insert(k, gir->topk.result, gir->region);
    }
    // Baseline: every query pays its own top-k I/O.
    Result<TopKResult> plain = RunBrs(engine->tree(), engine->scoring(), q, k);
    if (plain.ok()) reads_without_cache += plain->io.reads;
  }

  std::printf("workload: %d queries, %zu archetypes, jitter %.2f\n", queries,
              archetypes.size(), jitter);
  std::printf("cache:    %d exact hits (%.1f%%), %llu entries resident\n",
              served_from_cache, 100.0 * served_from_cache / queries,
              static_cast<unsigned long long>(cache.size()));
  std::printf("I/O:      %llu page reads with GIR cache vs %llu for plain "
              "re-evaluation\n",
              static_cast<unsigned long long>(reads_with_cache),
              static_cast<unsigned long long>(reads_without_cache));
  std::printf("          (cached queries also skip all GIR/top-k CPU)\n");

  // Tighter preference clusters -> higher hit rates. Show the trend.
  std::printf("\nhit rate vs preference-cluster tightness:\n");
  std::printf("%-10s %s\n", "jitter", "exact-hit rate");
  for (double jit : {0.01, 0.02, 0.05, 0.10}) {
    GirCache c2(256);
    int hits = 0;
    for (int i = 0; i < 200; ++i) {
      const Vec& base = archetypes[rng.UniformInt(archetypes.size())];
      Vec q(d);
      for (size_t j = 0; j < d; ++j) {
        q[j] = std::clamp(base[j] + rng.Gaussian(0.0, jit), 0.01, 1.0);
      }
      GirCache::Lookup hit = c2.Probe(q, k);
      if (hit.kind == GirCache::HitKind::kExact) {
        ++hits;
        continue;
      }
      Result<GirComputation> gir = engine->ComputeGir(q, k, Phase2Method::kFP);
      if (gir.ok()) c2.Insert(k, gir->topk.result, gir->region);
    }
    std::printf("%-10.2f %.1f%%\n", jit, 100.0 * hits / 200);
  }
  return 0;
}
