#!/usr/bin/env python3
"""Inspect GIR write-ahead-log segments (wal-<epoch>.gwal) offline.

Stdlib-only (struct + zlib.crc32 -- the segment CRCs are the reflected
IEEE polynomial, so zlib's crc32 matches the engine's) so it runs in CI
and on a bare box next to a crashed deployment. Walks each segment the
same way engine recovery does: verify the header, then records in
order, stopping at the first bad frame -- everything before the damage
is the committed prefix recovery would replay, everything after is the
torn tail it would truncate.

Usage: wal_inspect.py [--records] [--json] <segment.gwal | wal-dir>...

Exit codes: 0 every segment clean, 1 damage found (torn tail, corrupt
record, bad header), 2 usage or I/O error.
"""

import json
import os
import struct
import sys
import zlib

WAL_MAGIC = 0x4C415747  # "GWAL"
WAL_COMMIT_MAGIC = 0x57434D54  # "TMCW"
WAL_FORMAT = 1
HEADER_BYTES = 4 + 4 + 8 + 8 + 4  # magic, format, base_epoch, dim, crc
FRAME_PREFIX_BYTES = 4 + 8  # payload crc, payload length


def inspect_segment(path):
    """Parses one segment file into a dict (never raises on damage)."""
    with open(path, "rb") as f:
        data = f.read()
    seg = {
        "path": path,
        "bytes": len(data),
        "header_ok": False,
        "base_epoch": None,
        "dim": None,
        "records": [],
        "committed_records": 0,
        "tail": {"state": "clean", "damage_offset": None,
                 "trailing_bytes": 0},
    }

    def damaged(state, offset):
        seg["tail"] = {"state": state, "damage_offset": offset,
                       "trailing_bytes": len(data) - offset}
        return seg

    if len(data) < HEADER_BYTES:
        return damaged("bad-header", 0)
    magic, fmt, base_epoch, dim, header_crc = struct.unpack_from(
        "<IIQQI", data, 0)
    if (magic != WAL_MAGIC or fmt != WAL_FORMAT
            or header_crc != zlib.crc32(data[:HEADER_BYTES - 4])):
        return damaged("bad-header", 0)
    seg["header_ok"] = True
    seg["base_epoch"] = base_epoch
    seg["dim"] = dim

    at = HEADER_BYTES
    while at < len(data):
        start = at
        if len(data) - at < FRAME_PREFIX_BYTES:
            return damaged("torn", start)
        crc, length = struct.unpack_from("<IQ", data, at)
        at += FRAME_PREFIX_BYTES
        if length > len(data) - at or len(data) - at - length < 4:
            return damaged("torn", start)
        payload = data[at:at + length]
        at += length
        (commit,) = struct.unpack_from("<I", data, at)
        at += 4
        if commit != WAL_COMMIT_MAGIC or crc != zlib.crc32(payload):
            return damaged("corrupt", start)
        record = parse_payload(payload, dim)
        if record is None:
            return damaged("corrupt", start)
        record["offset"] = start
        record["frame_bytes"] = at - start
        seg["records"].append(record)
        seg["committed_records"] += 1
    return seg


def parse_payload(payload, dim):
    """Decodes one record payload; None when its shape is inconsistent."""
    if len(payload) < 16:
        return None
    epoch, n_inserts = struct.unpack_from("<QQ", payload, 0)
    at = 16
    rows = n_inserts * dim * 8
    if len(payload) - at < rows + 8:
        return None
    at += rows
    (n_deletes,) = struct.unpack_from("<Q", payload, at)
    at += 8
    if len(payload) - at != n_deletes * 8:
        return None
    return {"epoch": epoch, "inserts": n_inserts, "deletes": n_deletes}


def collect_segments(paths):
    """Expands directories into their wal-*.gwal files, sorted by name."""
    out = []
    for path in paths:
        if os.path.isdir(path):
            names = sorted(n for n in os.listdir(path)
                           if n.startswith("wal-") and n.endswith(".gwal"))
            if not names:
                raise FileNotFoundError(f"no wal-*.gwal segments in {path}")
            out.extend(os.path.join(path, n) for n in names)
        else:
            out.append(path)
    return out


def print_human(segments, show_records):
    for seg in segments:
        tail = seg["tail"]
        if not seg["header_ok"]:
            print(f"{seg['path']}: BAD HEADER ({seg['bytes']} bytes)")
            continue
        line = (f"{seg['path']}: base_epoch={seg['base_epoch']} "
                f"dim={seg['dim']} records={seg['committed_records']} "
                f"bytes={seg['bytes']}")
        if tail["state"] != "clean":
            line += (f" [{tail['state'].upper()} at offset "
                     f"{tail['damage_offset']}, "
                     f"{tail['trailing_bytes']} bytes dropped]")
        print(line)
        if show_records:
            for r in seg["records"]:
                print(f"  @{r['offset']:>8} epoch={r['epoch']} "
                      f"inserts={r['inserts']} deletes={r['deletes']} "
                      f"({r['frame_bytes']} bytes)")


def main(argv):
    args = argv[1:]
    as_json = "--json" in args
    show_records = "--records" in args
    paths = [a for a in args if a not in ("--json", "--records")]
    if not paths or any(a.startswith("--") for a in paths):
        print("usage: wal_inspect.py [--records] [--json] "
              "<segment.gwal | wal-dir>...")
        return 2

    try:
        files = collect_segments(paths)
        segments = [inspect_segment(p) for p in files]
    except OSError as err:
        print(f"error: {err}")
        return 2

    damage = sum(1 for s in segments if s["tail"]["state"] != "clean")
    committed = sum(s["committed_records"] for s in segments)
    epochs = [r["epoch"] for s in segments for r in s["records"]]
    summary = {
        "segments": segments,
        "committed_records": committed,
        "committed_epoch_range": [min(epochs), max(epochs)] if epochs
        else None,
        "damaged_segments": damage,
        "clean": damage == 0,
    }
    if as_json:
        print(json.dumps(summary, indent=2))
    else:
        print_human(segments, show_records)
        tail = (f"{len(segments)} segment(s), {committed} committed "
                f"record(s)")
        if epochs:
            tail += f", epochs {min(epochs)}..{max(epochs)}"
        tail += f", {damage} damaged"
        print(tail)
    return 1 if damage else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
