#!/usr/bin/env python3
"""Perf gate: diff a fresh bench JSON against the committed baseline.

Fails (exit 1) when any named metric regresses by more than the allowed
tolerance relative to the baseline value. Stdlib-only, like
validate_bench_json.py, so CI needs no pip installs.

Usage:
  compare_bench.py --baseline BENCH_PR4.json --fresh fresh.json \
      --metric lp.speedup \
      --metric micro.node_score_speedup_vs_aos:higher:0.4 \
      [--tolerance 0.25]

Each --metric is PATH[:DIRECTION[:TOLERANCE]]:
  PATH       dot-separated keys into the JSON (e.g. incremental.survival_rate)
  DIRECTION  "higher" (default): regression = fresh < baseline * (1 - tol)
             "lower":            regression = fresh > baseline * (1 + tol)
             "equal":            regression = fresh != baseline (booleans,
                                 counters that must not drift at all)
  TOLERANCE  per-metric override of --tolerance (fraction, e.g. 0.4)

A baseline of 0 with direction higher/lower is skipped with a warning
(no meaningful ratio); use "equal" for exact-match metrics.
"""

import argparse
import json
import sys


def lookup(doc, path):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(path)
        node = node[part]
    return node


def parse_metric(spec, default_tolerance):
    parts = spec.split(":")
    path = parts[0]
    direction = parts[1] if len(parts) > 1 and parts[1] else "higher"
    tolerance = float(parts[2]) if len(parts) > 2 else default_tolerance
    if direction not in ("higher", "lower", "equal"):
        raise ValueError(f"bad direction {direction!r} in {spec!r}")
    return path, direction, tolerance


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--fresh", required=True)
    ap.add_argument("--metric", action="append", required=True,
                    help="PATH[:DIRECTION[:TOLERANCE]] (repeatable)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="default allowed regression fraction (0.25 = 25%%)")
    args = ap.parse_args(argv[1:])

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    failures = 0
    for spec in args.metric:
        path, direction, tol = parse_metric(spec, args.tolerance)
        try:
            base_value = lookup(baseline, path)
        except KeyError:
            print(f"FAIL {path}: missing from baseline {args.baseline}")
            failures += 1
            continue
        try:
            fresh_value = lookup(fresh, path)
        except KeyError:
            print(f"FAIL {path}: missing from fresh {args.fresh}")
            failures += 1
            continue

        if direction == "equal":
            if fresh_value != base_value:
                print(f"FAIL {path}: {fresh_value!r} != baseline "
                      f"{base_value!r}")
                failures += 1
            else:
                print(f"ok   {path}: {fresh_value!r} (exact)")
            continue

        if not isinstance(base_value, (int, float)) or isinstance(
                base_value, bool):
            print(f"FAIL {path}: baseline value {base_value!r} is not "
                  f"numeric (use :equal)")
            failures += 1
            continue
        if base_value == 0:
            print(f"warn {path}: baseline is 0, ratio undefined — skipped")
            continue

        if direction == "higher":
            floor = base_value * (1.0 - tol)
            bad = fresh_value < floor
            bound_desc = f">= {floor:.4g}"
        else:
            ceil = base_value * (1.0 + tol)
            bad = fresh_value > ceil
            bound_desc = f"<= {ceil:.4g}"
        if bad:
            print(f"FAIL {path}: fresh {fresh_value:.4g} vs baseline "
                  f"{base_value:.4g} (need {bound_desc}, "
                  f"tol {tol:.0%}, {direction}-is-better)")
            failures += 1
        else:
            print(f"ok   {path}: fresh {fresh_value:.4g} vs baseline "
                  f"{base_value:.4g} ({direction}-is-better, "
                  f"tol {tol:.0%})")

    if failures:
        print(f"{failures} metric(s) regressed beyond tolerance")
        return 1
    print("all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
