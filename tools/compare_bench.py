#!/usr/bin/env python3
"""Perf gate: diff a fresh bench JSON against the committed baseline.

Fails (exit 1) when any named metric regresses by more than the allowed
tolerance relative to the baseline value. Stdlib-only, like
validate_bench_json.py, so CI needs no pip installs.

Usage:
  compare_bench.py --baseline BENCH_PR4.json --fresh fresh.json \
      --metric lp.speedup \
      --metric micro.node_score_speedup_vs_aos:higher:0.4 \
      [--tolerance 0.25]

  compare_bench.py --gates bench/gates.json

The --gates form runs every entry of a committed manifest — a JSON
object {"gates": [{"baseline": ..., "fresh": ..., "metrics": [SPEC,
...]}, ...]} with paths relative to the manifest's directory — so CI
invokes one command instead of one block per bench, and adding a bench
gate is a manifest edit, not a workflow edit.

Each --metric is PATH[:DIRECTION[:TOLERANCE]]:
  PATH       dot-separated keys into the JSON (e.g. incremental.survival_rate)
  DIRECTION  "higher" (default): regression = fresh < baseline * (1 - tol)
             "lower":            regression = fresh > baseline * (1 + tol)
             "equal":            regression = fresh != baseline (booleans,
                                 counters that must not drift at all)
  TOLERANCE  per-metric override of --tolerance (fraction, e.g. 0.4)

A baseline of 0 with direction higher/lower is skipped with a warning
(no meaningful ratio); use "equal" for exact-match metrics.
"""

import argparse
import json
import os
import sys


def lookup(doc, path):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(path)
        node = node[part]
    return node


def parse_metric(spec, default_tolerance):
    parts = spec.split(":")
    path = parts[0]
    direction = parts[1] if len(parts) > 1 and parts[1] else "higher"
    tolerance = float(parts[2]) if len(parts) > 2 else default_tolerance
    if direction not in ("higher", "lower", "equal"):
        raise ValueError(f"bad direction {direction!r} in {spec!r}")
    return path, direction, tolerance


def compare_pair(baseline_path, fresh_path, metrics, default_tolerance):
    """Compares one baseline/fresh pair; returns the failure count."""
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except OSError as e:
        print(f"FAIL {baseline_path}: {e}")
        return 1
    try:
        with open(fresh_path) as f:
            fresh = json.load(f)
    except OSError as e:
        print(f"FAIL {fresh_path}: {e}")
        return 1

    failures = 0
    for spec in metrics:
        path, direction, tol = parse_metric(spec, default_tolerance)
        try:
            base_value = lookup(baseline, path)
        except KeyError:
            print(f"FAIL {path}: missing from baseline {baseline_path}")
            failures += 1
            continue
        try:
            fresh_value = lookup(fresh, path)
        except KeyError:
            print(f"FAIL {path}: missing from fresh {fresh_path}")
            failures += 1
            continue

        if direction == "equal":
            if fresh_value != base_value:
                print(f"FAIL {path}: {fresh_value!r} != baseline "
                      f"{base_value!r}")
                failures += 1
            else:
                print(f"ok   {path}: {fresh_value!r} (exact)")
            continue

        if not isinstance(base_value, (int, float)) or isinstance(
                base_value, bool):
            print(f"FAIL {path}: baseline value {base_value!r} is not "
                  f"numeric (use :equal)")
            failures += 1
            continue
        if base_value == 0:
            print(f"warn {path}: baseline is 0, ratio undefined — skipped")
            continue

        if direction == "higher":
            floor = base_value * (1.0 - tol)
            bad = fresh_value < floor
            bound_desc = f">= {floor:.4g}"
        else:
            ceil = base_value * (1.0 + tol)
            bad = fresh_value > ceil
            bound_desc = f"<= {ceil:.4g}"
        if bad:
            print(f"FAIL {path}: fresh {fresh_value:.4g} vs baseline "
                  f"{base_value:.4g} (need {bound_desc}, "
                  f"tol {tol:.0%}, {direction}-is-better)")
            failures += 1
        else:
            print(f"ok   {path}: fresh {fresh_value:.4g} vs baseline "
                  f"{base_value:.4g} ({direction}-is-better, "
                  f"tol {tol:.0%})")

    return failures


def run_gates(manifest_path, default_tolerance):
    with open(manifest_path) as f:
        manifest = json.load(f)
    gates = manifest.get("gates")
    if not isinstance(gates, list) or not gates:
        print(f"FAIL {manifest_path}: no 'gates' array")
        return 1
    base_dir = os.path.dirname(os.path.abspath(manifest_path))
    failures = 0
    for gate in gates:
        baseline = os.path.join(base_dir, gate["baseline"])
        fresh = os.path.join(base_dir, gate["fresh"])
        print(f"--- {gate['baseline']} vs {gate['fresh']} ---")
        failures += compare_pair(baseline, fresh, gate["metrics"],
                                 gate.get("tolerance", default_tolerance))
    return failures


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline")
    ap.add_argument("--fresh")
    ap.add_argument("--metric", action="append", default=[],
                    help="PATH[:DIRECTION[:TOLERANCE]] (repeatable)")
    ap.add_argument("--gates",
                    help="manifest of (baseline, fresh, metrics) entries; "
                         "paths resolve relative to the manifest")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="default allowed regression fraction (0.25 = 25%%)")
    args = ap.parse_args(argv[1:])

    if args.gates:
        if args.baseline or args.fresh or args.metric:
            ap.error("--gates is exclusive with --baseline/--fresh/--metric")
        failures = run_gates(args.gates, args.tolerance)
    else:
        if not (args.baseline and args.fresh and args.metric):
            ap.error("need --baseline, --fresh and --metric (or --gates)")
        failures = compare_pair(args.baseline, args.fresh, args.metric,
                                args.tolerance)

    if failures:
        print(f"{failures} metric(s) regressed beyond tolerance")
        return 1
    print("all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
