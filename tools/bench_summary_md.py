#!/usr/bin/env python3
"""Render a short markdown summary of a BENCH_PR5 sweep JSON.

Used by CI to drop the shared-traversal metrics into the job's step
summary ($GITHUB_STEP_SUMMARY). Stdlib-only, like the other tools.

Usage: bench_summary_md.py BENCH_PR5.json
"""

import json
import sys


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        doc = json.load(f)

    p = doc["params"]
    gate = doc["gate"]
    print(f"### Shared-traversal batch sweep "
          f"(n={p['n']}, d={p['d']}, k={p['k']}, {p['method']})")
    print()
    print("| cell | fan-out QPS | shared QPS | QPS lift | fan-out reads "
          "| shared reads | read cut | dups |")
    print("|---|---|---|---|---|---|---|---|")
    for c in doc["sweep"]:
        mark = " *" if c["gated"] else ""
        print(f"| {c['overlap']}/{c['batch']}{mark} "
              f"| {c['fanout']['qps']:.0f} | {c['shared']['qps']:.0f} "
              f"| {c['qps_lift']:.2f}x "
              f"| {c['fanout']['physical_reads']:.0f} "
              f"| {c['shared']['physical_reads']:.0f} "
              f"| {c['read_cut']:.2f}x "
              f"| {c['shared']['duplicate_hits']:.0f} |")
    print()
    verdict = "PASS" if gate["pass"] else "FAIL"
    print(f"Gate (`*` cells, batch >= {gate['batch_floor']}, "
          f"high overlap): read cut {gate['read_cut_at_gate']:.2f}x "
          f"(need >= {gate['min_read_cut']:.2f}), QPS lift "
          f"{gate['qps_lift_at_gate']:.2f}x "
          f"(need >= {gate['min_qps_lift']:.2f}) -> **{verdict}**")
    # Reporting only: gating belongs to the bench exit code and
    # compare_bench, and CI runs this step even after a gate failure so
    # the table is available exactly when someone needs it.
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
