#!/usr/bin/env python3
"""Validate a bench JSON artifact against a checked-in JSON schema.

Stdlib-only implementation of the JSON-Schema subset the bench schemas
use -- type / properties / required / items / $ref into #/definitions --
so CI needs no pip installs. Exits non-zero with a path-qualified error
on the first violation.

Usage: validate_bench_json.py <schema.json> <instance.json>
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "number": (int, float),
    "integer": int,
}


class ValidationError(Exception):
    pass


def resolve_ref(schema, root):
    while "$ref" in schema:
        ref = schema["$ref"]
        if not ref.startswith("#/"):
            raise ValidationError(f"unsupported $ref {ref!r}")
        node = root
        for part in ref[2:].split("/"):
            if part not in node:
                raise ValidationError(f"dangling $ref {ref!r}")
            node = node[part]
        schema = node
    return schema


def check(instance, schema, root, path):
    schema = resolve_ref(schema, root)
    expected = schema.get("type")
    if expected is not None:
        py_type = TYPES.get(expected)
        if py_type is None:
            raise ValidationError(f"{path}: unknown schema type {expected!r}")
        ok = isinstance(instance, py_type)
        # bool is an int subclass in Python; keep integer/number strict.
        if expected in ("integer", "number") and isinstance(instance, bool):
            ok = False
        # Doubles that happen to be integral are fine as "integer"
        # (printf-produced counters never carry fractions).
        if expected == "integer" and isinstance(instance, float):
            ok = instance.is_integer()
        if not ok:
            raise ValidationError(
                f"{path}: expected {expected}, got "
                f"{type(instance).__name__} ({instance!r})")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                raise ValidationError(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in instance:
                check(instance[key], sub, root, f"{path}.{key}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            check(item, schema["items"], root, f"{path}[{i}]")


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        schema = json.load(f)
    with open(argv[2]) as f:
        instance = json.load(f)
    try:
        check(instance, schema, schema, "$")
    except ValidationError as e:
        print(f"{argv[2]}: INVALID: {e}", file=sys.stderr)
        return 1
    print(f"{argv[2]}: ok (schema {argv[1]})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
